//! # evilbloom-spamfilter
//!
//! A Bitly-like URL-shortening service protected by a Dablooms filter
//! (Section 6 of the paper).
//!
//! The service keeps a scaling, counting Bloom filter of known-malicious
//! URLs. Shortening requests are checked against it: a hit means the URL is
//! refused (or sent to a slow, expensive secondary verification). Three
//! adversarial behaviours are modelled:
//!
//! * **pollution**: the adversary registers crafted "phishing" URLs with the
//!   blocklist operator (e.g. via PhishTank), inflating the filter until a
//!   large fraction of *benign* shortening requests are wrongly refused
//!   (Figure 8);
//! * **deletion**: delisting requests for crafted URLs evict genuine
//!   malicious URLs from the counting filter;
//! * **counter overflow**: crafted insert/overflow patterns leave whole
//!   sub-filters "full but empty" (Section 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use evilbloom_attacks::pollution::craft_polluting_items;
use evilbloom_attacks::SearchStats;
use evilbloom_filters::{Dablooms, ScalableConfig};
use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
use evilbloom_urlgen::UrlGenerator;

/// Outcome of a shortening request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The URL was accepted and shortened.
    Accepted,
    /// The URL was refused because the blocklist filter reported it.
    Refused,
}

/// Statistics kept by the shortening service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Shortening requests accepted.
    pub accepted: u64,
    /// Shortening requests refused by the filter.
    pub refused: u64,
}

/// A URL-shortening service with a Dablooms-backed malicious-URL blocklist.
pub struct ShorteningService {
    blocklist: Dablooms,
    known_malicious: HashSet<String>,
    stats: ServiceStats,
}

impl ShorteningService {
    /// Creates a service with the paper's Dablooms configuration
    /// (`δ = 10 000`, `f0 = 0.01`, `r = 0.9`, MurmurHash3 + KM).
    pub fn new_paper_configuration() -> Self {
        Self::with_config(ScalableConfig::dablooms())
    }

    /// Creates a service with a custom Dablooms configuration.
    pub fn with_config(config: ScalableConfig) -> Self {
        ShorteningService {
            blocklist: Dablooms::new(config, KirschMitzenmacher::new(Murmur3_128)),
            known_malicious: HashSet::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The blocklist filter (read access for experiments and attacks).
    pub fn blocklist(&self) -> &Dablooms {
        &self.blocklist
    }

    /// Accumulated service statistics.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Reports a URL as malicious (e.g. via an anti-phishing feed). The URL
    /// is inserted into the Dablooms filter.
    pub fn report_malicious(&mut self, url: &str) {
        self.blocklist.insert(url.as_bytes());
        self.known_malicious.insert(url.to_owned());
    }

    /// Requests delisting of a URL (e.g. after a successful appeal). Like
    /// the original Dablooms `remove`, the deletion is performed without a
    /// membership check — the trusting behaviour the deletion adversary
    /// needs.
    pub fn delist(&mut self, url: &str) {
        self.blocklist.force_delete(url.as_bytes());
        self.known_malicious.remove(url);
    }

    /// Handles a shortening request.
    pub fn shorten(&mut self, url: &str) -> Verdict {
        if self.blocklist.contains(url.as_bytes()) {
            self.stats.refused += 1;
            Verdict::Refused
        } else {
            self.stats.accepted += 1;
            Verdict::Accepted
        }
    }

    /// Fraction of the provided benign URLs that the service wrongly refuses
    /// (collateral damage of pollution).
    pub fn false_refusal_rate<'a, I>(&mut self, benign: I) -> f64
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut total = 0u64;
        let mut refused = 0u64;
        for url in benign {
            total += 1;
            if self.shorten(url) == Verdict::Refused {
                refused += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            refused as f64 / total as f64
        }
    }

    /// Whether a URL the operator believes to be malicious is still detected
    /// (used to measure the impact of deletion attacks).
    pub fn still_detected(&self, url: &str) -> bool {
        self.blocklist.contains(url.as_bytes())
    }
}

impl Default for ShorteningService {
    fn default() -> Self {
        Self::new_paper_configuration()
    }
}

/// A pollution campaign against the service: crafted "phishing" URLs the
/// adversary gets reported as malicious.
#[derive(Debug, Clone)]
pub struct PollutionCampaign {
    /// The crafted URLs, in reporting order.
    pub urls: Vec<String>,
    /// Cost accounting of the forgery search.
    pub stats: SearchStats,
}

/// Plans a pollution campaign of `count` crafted URLs against the service's
/// *active* sub-filter.
///
/// The adversary targets whichever slice new reports currently land in; as
/// slices fill up she re-plans, which [`run_pollution_campaign`] does
/// automatically slice by slice.
pub fn plan_pollution_campaign(service: &ShorteningService, count: usize) -> PollutionCampaign {
    let slices = service.blocklist().slices();
    let active = slices.last().expect("Dablooms always has a slice");
    let generator = UrlGenerator::new("phish-campaign");
    let plan = craft_polluting_items(active, &generator, count, u64::MAX);
    PollutionCampaign { urls: plan.items, stats: plan.stats }
}

/// Runs a full pollution campaign: keeps crafting URLs against the active
/// slice and reporting them until `total` URLs have been reported. Returns
/// the overall number of crafted URLs reported.
pub fn run_pollution_campaign(service: &mut ShorteningService, total: usize) -> usize {
    let slice_capacity = service.blocklist().config().slice_capacity as usize;
    let mut reported = 0usize;
    let mut wave = 0u32;
    while reported < total {
        let active_index = service.blocklist().slice_count() - 1;
        let used = service.blocklist().slice_insertions(active_index) as usize;
        let remaining = slice_capacity.saturating_sub(used);
        if remaining == 0 {
            // The active slice is full: one ordinary report rolls Dablooms
            // over to a fresh slice, which the next wave then targets.
            service.report_malicious(&format!("http://phish-rollover-{wave}.example/"));
            reported += 1;
            wave += 1;
            continue;
        }
        let batch = (total - reported).min(remaining);
        let slices = service.blocklist().slices();
        let active = slices.last().expect("Dablooms always has a slice");
        let generator = UrlGenerator::new(&format!("phish-wave-{wave}"));
        let plan = craft_polluting_items(active, &generator, batch, u64::MAX);
        let crafted = plan.items.len();
        for url in &plan.items {
            service.report_malicious(url);
        }
        reported += crafted;
        wave += 1;
        if crafted == 0 {
            break;
        }
    }
    reported
}

/// Plans a delisting (deletion) attack that evicts `victim` from the
/// blocklist: crafted URLs are delisted so their shared cells drop to zero.
pub fn plan_delisting_attack(service: &ShorteningService, victim: &str) -> Vec<String> {
    // Work against every slice that currently reports the victim.
    let mut items = Vec::new();
    for slice in service.blocklist().slices() {
        if !slice.contains(victim.as_bytes()) {
            continue;
        }
        let generator = UrlGenerator::new("delist");
        let plan = evilbloom_attacks::deletion::plan_targeted_deletion(
            slice,
            victim.as_bytes(),
            &generator,
            50_000_000,
        );
        items.extend(plan.items);
    }
    items.sort();
    items.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service() -> ShorteningService {
        ShorteningService::with_config(ScalableConfig {
            slice_capacity: 500,
            base_fpp: 0.01,
            tightening_ratio: 0.9,
        })
    }

    fn benign_urls(count: usize) -> Vec<String> {
        (0..count).map(|i| format!("http://legit-site-{i}.example/article")).collect()
    }

    #[test]
    fn honest_operation_blocks_malicious_and_accepts_benign() {
        let mut service = small_service();
        for i in 0..300 {
            service.report_malicious(&format!("http://phish-{i}.example/login"));
        }
        // Reported URLs are refused.
        assert_eq!(service.shorten("http://phish-0.example/login"), Verdict::Refused);
        assert_eq!(service.shorten("http://phish-299.example/login"), Verdict::Refused);
        // Benign URLs are almost always accepted (f0 = 1%).
        let benign = benign_urls(2000);
        let rate = service.false_refusal_rate(benign.iter().map(String::as_str));
        assert!(rate < 0.03, "false refusal rate {rate}");
    }

    #[test]
    fn pollution_campaign_raises_false_refusals() {
        let mut service = small_service();
        // Honest baseline: a few genuine reports.
        for i in 0..100 {
            service.report_malicious(&format!("http://real-phish-{i}.example/"));
        }
        let benign = benign_urls(2000);
        let baseline = service.false_refusal_rate(benign.iter().map(String::as_str));

        // The adversary floods the feed with crafted URLs (4 slices worth).
        let reported = run_pollution_campaign(&mut service, 2000);
        assert!(reported >= 1900);

        let probe = benign_urls(4000);
        let polluted_rate = service.false_refusal_rate(probe.iter().skip(2000).map(String::as_str));
        assert!(polluted_rate > baseline + 0.05, "polluted {polluted_rate} vs baseline {baseline}");
        // The compound false-positive estimate agrees that things got worse.
        assert!(service.blocklist().current_false_positive_probability() > 0.05);
    }

    #[test]
    fn campaign_pollutes_slices_beyond_design_fill() {
        let mut service = small_service();
        run_pollution_campaign(&mut service, 500);
        let slice = &service.blocklist().slices()[0];
        // A crafted slice-load sets ~capacity*k cells, well above the ~50%
        // fill an honest load produces.
        assert!(slice.fill_ratio() > 0.6, "fill {}", slice.fill_ratio());
    }

    #[test]
    fn delisting_attack_unblocks_a_malicious_url() {
        let mut service = small_service();
        for i in 0..50 {
            service.report_malicious(&format!("http://cover-{i}.example/"));
        }
        let victim = "http://actually-malicious.example/exploit";
        service.report_malicious(victim);
        assert!(service.still_detected(victim));

        let crafted = plan_delisting_attack(&service, victim);
        assert!(!crafted.is_empty());
        // The adversary gets her crafted URLs delisted (repeating the appeal
        // until the shared counters drain).
        let mut rounds = 0;
        while service.still_detected(victim) && rounds < 8 {
            for url in &crafted {
                service.delist(url);
            }
            rounds += 1;
        }
        assert!(!service.still_detected(victim), "victim still detected after {rounds} rounds");
    }

    #[test]
    fn stats_accumulate() {
        let mut service = small_service();
        service.report_malicious("http://bad.example/");
        service.shorten("http://bad.example/");
        service.shorten("http://good.example/");
        let stats = service.stats();
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn default_service_uses_paper_configuration() {
        let service = ShorteningService::default();
        assert_eq!(service.blocklist().config().slice_capacity, 10_000);
    }
}

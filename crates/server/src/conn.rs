//! Per-connection protocol logic shared by both backends, and the
//! non-blocking connection state machine the epoll reactor drives.
//!
//! The protocol half — "decode every complete frame in the accumulator, execute
//! it against the store, append the response frames" — is identical whether
//! the bytes arrived through a blocking worker thread or a reactor
//! readiness event, so [`drain_frames`] / [`execute`] are the single
//! implementation both backends call. What differs is only the I/O driver:
//! the threaded backend wraps them in blocking reads/writes
//! ([`crate::server`]), the async backend in the [`Connection`] state
//! machine below (read-accumulate → drain → buffered write with
//! `WouldBlock`-aware flush, re-armed on `EPOLLOUT` by the reactor).

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use evilbloom_metrics::log_warn;
use evilbloom_trace::TraceEvent;

use evilbloom_store::WriteRefusal;

use crate::metrics::op_of;
use crate::server::Inner;
use crate::wire::{
    self, Command, Response, WireDriftPoint, WireSnapshot, WireStats, WireSuspect, WireTrace,
    WireTraceEvent,
};

/// Per-read chunk size used by both backends (the threaded backend reads
/// into a pooled chunk buffer; each reactor shard owns one shared scratch
/// buffer of this size, not one per connection).
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Rows of the suspect ranking a `TRACE` scrape returns.
const SUSPECT_TOP_K: usize = 8;

/// Decodes and executes every complete frame in `acc`, appending response
/// frames to `out`. Returns `false` when a protocol violation means the
/// connection must close (the stream can no longer be trusted to be in
/// sync); a final `ERROR` response is still emitted so the client learns
/// why.
pub(crate) fn drain_frames(
    acc: &mut Vec<u8>,
    out: &mut Vec<u8>,
    inner: &Inner,
    conn_id: u64,
) -> bool {
    let (consumed, keep_open) = drain_frame_slice(acc, out, inner, conn_id);
    acc.drain(..consumed);
    keep_open
}

/// Slice form of [`drain_frames`]: executes every complete frame in `buf`
/// and returns `(bytes consumed, keep_open)`, leaving the caller to decide
/// what to do with the unconsumed tail. The reactor's read path uses this
/// to serve frames straight out of the read scratch buffer, copying only a
/// trailing partial frame into the per-connection accumulator.
pub(crate) fn drain_frame_slice(
    buf: &[u8],
    out: &mut Vec<u8>,
    inner: &Inner,
    conn_id: u64,
) -> (usize, bool) {
    let mut consumed = 0;
    let mut keep_open = true;
    loop {
        match wire::frame_bounds(buf, consumed, inner.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some((start, end))) => {
                consumed = end;
                match Command::decode(&buf[start..end]) {
                    Ok(command) => {
                        let op = op_of(&command);
                        let started = Instant::now();
                        let response = execute(&command, inner);
                        let elapsed = started.elapsed();
                        emit(&response, out);
                        inner.metrics.observe_request(op, elapsed);
                        record_frame(inner, conn_id, &command, &response, elapsed);
                        inner.requests_served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(err) => {
                        inner.metrics.protocol_errors.inc();
                        emit(&Response::Error(format!("protocol error: {err}")), out);
                        keep_open = false;
                        break;
                    }
                }
            }
            Err(err) => {
                inner.metrics.protocol_errors.inc();
                emit(&Response::Error(format!("protocol error: {err}")), out);
                keep_open = false;
                break;
            }
        }
    }
    (consumed, keep_open)
}

/// Serialises one response into `out`, falling back to a short `ERROR`
/// frame when the response itself will not fit the wire format (e.g. a
/// count past `u32::MAX`). The fallible encode truncates its partial frame
/// on failure, so the stream stays self-delimiting either way.
fn emit(response: &Response, out: &mut Vec<u8>) {
    if let Err(err) = response.encode(out) {
        Response::Error(format!("response unencodable: {err}"))
            .encode(out)
            .expect("short error response always frames");
    }
}

/// Feeds one executed frame into the forensic layer: item-bearing commands
/// become `batch` flight-recorder events carrying the fresh-bit yield the
/// response reported, inserts additionally fold that yield into the
/// per-connection suspect table (queries and deletes set no bits, so they
/// carry no attribution signal), and any command whose execution crossed
/// the slow-request threshold is logged at `warn` and recorded.
fn record_frame(
    inner: &Inner,
    conn_id: u64,
    command: &Command<'_>,
    response: &Response,
    elapsed: Duration,
) {
    let latency_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let opcode = command.opcode();
    match (command, response) {
        (Command::Insert(_), Response::Inserted { fresh_bits }) => {
            let fresh_bits = u64::from(*fresh_bits);
            inner.suspects.record_batch(conn_id, 1, fresh_bits);
            inner.recorder.record(TraceEvent::BatchExecuted {
                conn_id,
                opcode,
                items: 1,
                fresh_bits,
                latency_ns,
            });
        }
        (Command::InsertBatch(_), Response::BatchInserted { items, fresh_bits }) => {
            let items = u64::from(*items);
            inner.suspects.record_batch(conn_id, items, *fresh_bits);
            inner.recorder.record(TraceEvent::BatchExecuted {
                conn_id,
                opcode,
                items,
                fresh_bits: *fresh_bits,
                latency_ns,
            });
        }
        (Command::Query(_) | Command::Delete(_), _) => {
            inner.recorder.record(TraceEvent::BatchExecuted {
                conn_id,
                opcode,
                items: 1,
                fresh_bits: 0,
                latency_ns,
            });
        }
        (Command::QueryBatch(items) | Command::DeleteBatch(items), _) => {
            inner.recorder.record(TraceEvent::BatchExecuted {
                conn_id,
                opcode,
                items: items.len() as u64,
                fresh_bits: 0,
                latency_ns,
            });
        }
        _ => {}
    }
    if elapsed >= inner.slow_request_threshold {
        inner.recorder.record(TraceEvent::SlowRequest { conn_id, opcode, latency_ns });
        log_warn!(
            "slow request: conn={conn_id} op=0x{opcode:02x} took {}ms (threshold {}ms)",
            elapsed.as_millis(),
            inner.slow_request_threshold.as_millis()
        );
    }
}

/// Executes one decoded command against the store. Batch commands pass the
/// borrowed item slices straight through to the store's batch APIs, which
/// visit each shard lock exactly once per frame.
pub(crate) fn execute(command: &Command<'_>, inner: &Inner) -> Response {
    let store = inner.store.as_ref();
    // Maps a typed write refusal from the serving layer onto the wire:
    // degraded read-only mode becomes DEGRADED (retryable after a repair
    // snapshot; counted), a capability refusal stays UNSUPPORTED. Both
    // leave the connection open.
    let refused = |refusal: WriteRefusal| match refusal {
        WriteRefusal::Degraded(reason) => {
            inner.metrics.degraded_refusals.inc();
            Response::Degraded(format!("store is in degraded read-only mode: {reason}"))
        }
        WriteRefusal::Unsupported(op) => Response::Unsupported(op.to_string()),
    };
    match command {
        Command::Ping => Response::Pong,
        Command::Insert(item) => match store.insert(item) {
            Ok(fresh_bits) => Response::Inserted { fresh_bits },
            Err(refusal) => refused(refusal),
        },
        Command::Query(item) => Response::Found(store.contains(item)),
        Command::InsertBatch(items) => match wire::wire_count("batch item count", items.len()) {
            Ok(count) => match store.insert_batch(items) {
                Ok(outcome) => {
                    Response::BatchInserted { items: count, fresh_bits: outcome.fresh_bits }
                }
                Err(refusal) => refused(refusal),
            },
            Err(err) => Response::Error(format!("protocol error: {err}")),
        },
        Command::QueryBatch(items) => Response::BatchFound(store.query_batch(items)),
        // Deletion is a *capability*, not a protocol feature: non-deletable
        // families answer UNSUPPORTED (typed, connection stays open), so a
        // remote deletion adversary learns the family refuses rather than
        // tripping a protocol error.
        Command::Delete(item) => match store.remove(item) {
            Ok(was_present) => Response::Deleted { was_present },
            Err(refusal) => refused(refusal),
        },
        Command::DeleteBatch(items) => match store.remove_batch(items) {
            Ok(answers) => Response::BatchDeleted(answers),
            Err(refusal) => refused(refusal),
        },
        Command::Stats => {
            let uptime = inner.started.elapsed().as_secs();
            let degraded = store.degraded().is_some();
            match WireStats::from_stats(&store.stats(), store.is_hardened(), uptime, degraded) {
                Ok(stats) => Response::Stats(stats),
                Err(err) => Response::Error(format!("stats unencodable: {err}")),
            }
        }
        Command::Metrics => {
            // A scrape refreshes the sampled store gauges (per-shard fill,
            // alarms, the drift series) and the uptime gauge before
            // rendering, so the exposition is taken at scrape time.
            store.sample_metrics();
            inner.metrics.uptime_seconds.set(inner.started.elapsed().as_secs_f64());
            Response::Metrics(evilbloom_metrics::Registry::render_merged(&[
                inner.metrics.registry(),
                store.metrics().registry(),
            ]))
        }
        Command::Snapshot => match store.snapshot_to_disk() {
            Ok(info) => Response::Snapshotted(WireSnapshot {
                seq: info.seq,
                wal_seq: info.wal_seq,
                shards: info.shards,
                bytes: info.bytes,
            }),
            Err(err) => Response::Error(format!("snapshot failed: {err}")),
        },
        Command::RotateBegin { shard } => match checked_shard(store, *shard) {
            Err(error) => error,
            Ok(shard) => {
                let generation = {
                    let mut rng = inner.rotation_rng.lock().expect("rotation rng poisoned");
                    store.begin_rotation_dyn(shard, &mut *rng)
                };
                if let Some(generation) = generation {
                    inner
                        .recorder
                        .record(TraceEvent::RotationBegun { shard: shard as u64, generation });
                }
                Response::Rotated { generation }
            }
        },
        Command::RotateComplete { shard } => match checked_shard(store, *shard) {
            Err(error) => error,
            Ok(shard) => {
                let dropped = store.complete_rotation(shard);
                if dropped {
                    inner.recorder.record(TraceEvent::RotationCompleted { shard: shard as u64 });
                }
                Response::RotationCompleted(dropped)
            }
        },
        Command::Trace => {
            // Like `METRICS`, a trace scrape refreshes the sampled store
            // gauges first: alarm transitions are detected (and recorded as
            // events) at sample time, so the scrape that asks "who did
            // this?" is also the one that notices the alarm.
            store.sample_metrics();
            let events = inner
                .recorder
                .snapshot()
                .into_iter()
                .map(|e| WireTraceEvent { seq: e.seq, ts_ms: e.ts_ms, event: e.event })
                .collect();
            let suspects = inner
                .suspects
                .top(SUSPECT_TOP_K)
                .into_iter()
                .map(|row| WireSuspect {
                    conn_id: row.conn_id,
                    ewma_bits_per_item: row.ewma_bits_per_item,
                    batches: row.batches,
                    items: row.items,
                    fresh_bits: row.fresh_bits,
                })
                .collect();
            let drift = store
                .metrics()
                .drift_series()
                .into_iter()
                .map(|(inserts, fresh_bits)| WireDriftPoint { inserts, fresh_bits })
                .collect();
            Response::Trace(WireTrace {
                recorded: inner.recorder.recorded(),
                dropped: inner.recorder.dropped(),
                overwritten: inner.recorder.overwritten(),
                events,
                suspects,
                drift,
            })
        }
    }
}

fn checked_shard(store: &dyn evilbloom_store::ServeStore, shard: u32) -> Result<usize, Response> {
    let index = shard as usize;
    if index >= store.shard_count() {
        return Err(Response::Error(format!(
            "shard {index} out of range (store has {} shards)",
            store.shard_count()
        )));
    }
    Ok(index)
}

/// The async backend's per-connection state machine.
#[cfg(target_os = "linux")]
pub(crate) use state_machine::{Connection, Status};

#[cfg(target_os = "linux")]
mod state_machine {
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    use evilbloom_fault::{self as fault, FaultPoint};

    use super::{drain_frame_slice, drain_frames, Inner};

    /// Once this many response bytes are pending un-sent, the connection
    /// stops *reading* until the peer drains them — a peer that pipelines
    /// without ever receiving gets backpressure instead of ballooning the
    /// server's write buffer without bound.
    const OUT_HIGH_WATER: usize = 4 * 1024 * 1024;

    /// What a readiness event did to the connection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Status {
        /// Still serving; re-arm with [`Connection::wants_read`] /
        /// [`Connection::wants_write`].
        Open,
        /// EOF, fatal I/O error, or a protocol violation whose `ERROR`
        /// response has been fully flushed: deregister and drop.
        Closed,
    }

    /// One non-blocking connection: a receive accumulator, a pending-write
    /// buffer with a flush cursor, and the closing flag that keeps a
    /// protocol-violation `ERROR` alive until it has been flushed.
    pub(crate) struct Connection {
        stream: TcpStream,
        conn_id: u64,
        acc: Vec<u8>,
        out: Vec<u8>,
        out_pos: usize,
        closing: bool,
        /// When the connection first hit the pending-write high-water mark
        /// without draining since — the slow-consumer eviction clock.
        /// Cleared whenever a flush makes progress.
        stalled_since: Option<Instant>,
    }

    impl Connection {
        /// Wraps an accepted stream (already set non-blocking) with pooled
        /// buffers, under the forensic connection id the reactor allocated.
        pub(crate) fn new(
            stream: TcpStream,
            conn_id: u64,
            acc: Vec<u8>,
            out: Vec<u8>,
        ) -> Connection {
            Connection {
                stream,
                conn_id,
                acc,
                out,
                out_pos: 0,
                closing: false,
                stalled_since: None,
            }
        }

        /// The forensic connection id this connection records under.
        pub(crate) fn conn_id(&self) -> u64 {
            self.conn_id
        }

        /// Reclaims the pooled buffers when the connection closes.
        pub(crate) fn into_buffers(self) -> (Vec<u8>, Vec<u8>) {
            let Connection { acc, mut out, .. } = self;
            out.clear();
            (acc, out)
        }

        fn pending_out(&self) -> usize {
            self.out.len() - self.out_pos
        }

        /// Whether the reactor should watch this connection for readability.
        pub(crate) fn wants_read(&self) -> bool {
            !self.closing && self.pending_out() < OUT_HIGH_WATER
        }

        /// Whether the reactor should watch this connection for writability
        /// (only while a flush came up short — `EPOLLOUT` on an idle
        /// connection would busy-loop a level-triggered poll).
        pub(crate) fn wants_write(&self) -> bool {
            self.pending_out() > 0
        }

        /// How long this connection has been pinned at the pending-write
        /// high-water mark without the peer draining anything. `None` while
        /// healthy. The reactor evicts connections stalled past the
        /// configured slow-consumer grace period.
        pub(crate) fn stalled_for(&self, now: Instant) -> Option<Duration> {
            self.stalled_since.map(|since| now.saturating_duration_since(since))
        }

        /// Readable readiness: read until `WouldBlock` (or the backpressure
        /// high-water mark), execute every complete frame, flush.
        pub(crate) fn on_readable(&mut self, scratch: &mut [u8], inner: &Inner) -> Status {
            loop {
                if fault::check_io(FaultPoint::SocketRead).is_err() {
                    return Status::Closed;
                }
                match self.stream.read(scratch) {
                    Ok(0) => {
                        // EOF. The peer may have half-closed (shutdown of
                        // its write side) and still be reading: responses
                        // already executed must reach it, so route through
                        // the flush-then-close path instead of dropping
                        // pending bytes — the threaded backend delivers
                        // them too.
                        self.closing = true;
                        break;
                    }
                    Ok(n) => {
                        inner.metrics.bytes_read.add(n as u64);
                        let keep_open = if self.acc.is_empty() {
                            // Zero-copy fast path (the common case: no
                            // partial frame pending): serve complete frames
                            // straight from the scratch buffer and copy
                            // only a trailing partial frame into the
                            // accumulator.
                            let (consumed, keep_open) = drain_frame_slice(
                                &scratch[..n],
                                &mut self.out,
                                inner,
                                self.conn_id,
                            );
                            if keep_open {
                                self.acc.extend_from_slice(&scratch[consumed..n]);
                            }
                            keep_open
                        } else {
                            self.acc.extend_from_slice(&scratch[..n]);
                            drain_frames(&mut self.acc, &mut self.out, inner, self.conn_id)
                        };
                        if !keep_open {
                            // Protocol violation: flush the ERROR response,
                            // then close (see `flush`).
                            self.closing = true;
                            break;
                        }
                        if !self.wants_read() {
                            // Backpressure: pending writes first. Start the
                            // slow-consumer clock; a flush that makes
                            // progress resets it.
                            inner.metrics.reactor_backpressure.inc();
                            if self.stalled_since.is_none() {
                                self.stalled_since = Some(Instant::now());
                            }
                            break;
                        }
                        if n < scratch.len() {
                            break; // socket very likely drained
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Status::Closed,
                }
            }
            self.flush(inner)
        }

        /// Writable readiness (or an opportunistic flush after executing
        /// frames): write pending response bytes until done or `WouldBlock`.
        pub(crate) fn flush(&mut self, inner: &Inner) -> Status {
            while self.out_pos < self.out.len() {
                if fault::check_io(FaultPoint::SocketWrite).is_err() {
                    return Status::Closed;
                }
                match self.stream.write(&self.out[self.out_pos..]) {
                    Ok(0) => return Status::Closed,
                    Ok(n) => {
                        inner.metrics.bytes_written.add(n as u64);
                        self.out_pos += n;
                        // The peer is draining again: restart the
                        // slow-consumer grace period.
                        self.stalled_since = None;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Status::Open,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Status::Closed,
                }
            }
            self.out.clear();
            self.out_pos = 0;
            if self.closing {
                // The protocol-violation ERROR is on the wire; now close.
                return Status::Closed;
            }
            Status::Open
        }
    }
}

//! Runtime telemetry for the serving layer: per-opcode request counters and
//! latency histograms, transport byte counters, connection lifecycle,
//! reactor readiness accounting and buffer-pool efficiency.
//!
//! One [`ServerMetrics`] lives in [`crate::server::Inner`], shared by both
//! backends. Reactor- and buffer-pool-prefixed names are registered
//! unconditionally so a scraper sees the same metric families (at zero)
//! whichever backend serves — the exposition's *shape* never depends on
//! runtime configuration. The `METRICS` opcode renders this registry merged
//! with the store's (which carries the store- and persist-layer families).

use std::sync::Arc;
use std::time::Duration;

use evilbloom_metrics::{Counter, Gauge, Histogram, Registry};

use crate::wire::Command;

/// Wire opcodes as metric label values, indexed by [`op_of`].
const OPS: [&str; 12] = [
    "ping", "insert", "query", "minsert", "mquery", "stats", "rotate", "snapshot", "metrics",
    "delete", "mdelete", "trace",
];

/// Maps a decoded command to its slot in the per-opcode metric arrays.
pub(crate) fn op_of(command: &Command<'_>) -> usize {
    match command {
        Command::Ping => 0,
        Command::Insert(_) => 1,
        Command::Query(_) => 2,
        Command::InsertBatch(_) => 3,
        Command::QueryBatch(_) => 4,
        Command::Stats => 5,
        Command::RotateBegin { .. } | Command::RotateComplete { .. } => 6,
        Command::Snapshot => 7,
        Command::Metrics => 8,
        Command::Delete(_) => 9,
        Command::DeleteBatch(_) => 10,
        Command::Trace => 11,
    }
}

/// Every serving-layer metric, registered in one [`Registry`].
pub(crate) struct ServerMetrics {
    registry: Registry,
    /// Requests executed, per opcode (`op` label).
    requests: Vec<Arc<Counter>>,
    /// Decode-to-response-encoded latency, per opcode (`op` label).
    latency_ns: Vec<Arc<Histogram>>,
    /// Payload bytes read from / written to client sockets.
    pub(crate) bytes_read: Arc<Counter>,
    /// See [`ServerMetrics::bytes_read`].
    pub(crate) bytes_written: Arc<Counter>,
    /// Connections accepted into a backend (worker or reactor shard).
    pub(crate) connections_opened: Arc<Counter>,
    /// Connections that finished serving (EOF, error, violation, shutdown).
    pub(crate) connections_closed: Arc<Counter>,
    /// Frames rejected as protocol violations (the connection closes).
    pub(crate) protocol_errors: Arc<Counter>,
    /// Connections refused with a `BUSY` frame by admission control
    /// (threaded backend: the acceptor→worker queue was at its bound).
    pub(crate) busy_rejections: Arc<Counter>,
    /// Connections evicted after sitting at the pending-write high-water
    /// mark past the slow-consumer grace period (async backend).
    pub(crate) slow_consumer_evictions: Arc<Counter>,
    /// Writes refused because the store is in degraded read-only mode.
    pub(crate) degraded_refusals: Arc<Counter>,
    /// Seconds since the server spawned (refreshed at each scrape).
    pub(crate) uptime_seconds: Arc<Gauge>,
    /// `epoll_wait` returns across all reactor shards (async backend).
    pub(crate) reactor_wakeups: Arc<Counter>,
    /// Interest changes that newly armed `EPOLLOUT` (a flush came up short).
    pub(crate) reactor_epollout_arms: Arc<Counter>,
    /// Reads paused because a peer let pending responses hit the high-water
    /// mark.
    pub(crate) reactor_backpressure: Arc<Counter>,
    /// Buffer-pool checkouts served from the free list / by fresh
    /// allocation, and check-ins that trimmed an inflated buffer.
    pub(crate) pool_hits: Arc<Counter>,
    /// See [`ServerMetrics::pool_hits`].
    pub(crate) pool_misses: Arc<Counter>,
    /// See [`ServerMetrics::pool_hits`].
    pub(crate) pool_trims: Arc<Counter>,
}

impl ServerMetrics {
    pub(crate) fn new() -> ServerMetrics {
        let r = Registry::new();
        let requests = OPS
            .iter()
            .map(|op| {
                r.counter_with(
                    "evilbloom_server_requests_total",
                    "Requests executed, by wire opcode",
                    &[("op", op)],
                )
            })
            .collect();
        let latency_ns = OPS
            .iter()
            .map(|op| {
                r.histogram_with(
                    "evilbloom_server_request_latency_ns",
                    "Per-request latency from decoded frame to encoded response",
                    &[("op", op)],
                )
            })
            .collect();
        ServerMetrics {
            requests,
            latency_ns,
            bytes_read: r
                .counter("evilbloom_server_bytes_read_total", "Bytes read from client sockets"),
            bytes_written: r.counter(
                "evilbloom_server_bytes_written_total",
                "Response bytes written to client sockets",
            ),
            connections_opened: r.counter(
                "evilbloom_server_connections_opened_total",
                "Connections handed to a worker or reactor shard",
            ),
            connections_closed: r.counter(
                "evilbloom_server_connections_closed_total",
                "Connections that finished serving",
            ),
            protocol_errors: r.counter(
                "evilbloom_server_protocol_errors_total",
                "Frames rejected as protocol violations",
            ),
            busy_rejections: r.counter(
                "evilbloom_server_busy_rejections_total",
                "Connections refused with a BUSY frame by admission control",
            ),
            slow_consumer_evictions: r.counter(
                "evilbloom_server_slow_consumer_evictions_total",
                "Connections evicted after stalling at the write high-water mark",
            ),
            degraded_refusals: r.counter(
                "evilbloom_server_degraded_refusals_total",
                "Writes refused while the store is in degraded read-only mode",
            ),
            uptime_seconds: r.gauge(
                "evilbloom_server_uptime_seconds",
                "Seconds since the server spawned, refreshed per scrape",
            ),
            reactor_wakeups: r.counter(
                "evilbloom_reactor_wakeups_total",
                "epoll_wait returns across reactor shards (async backend only)",
            ),
            reactor_epollout_arms: r.counter(
                "evilbloom_reactor_epollout_arms_total",
                "Interest updates that newly armed EPOLLOUT after a short flush",
            ),
            reactor_backpressure: r.counter(
                "evilbloom_reactor_backpressure_total",
                "Reads paused at the pending-response high-water mark",
            ),
            pool_hits: r.counter(
                "evilbloom_bufferpool_hits_total",
                "Buffer checkouts served from the free list",
            ),
            pool_misses: r.counter(
                "evilbloom_bufferpool_misses_total",
                "Buffer checkouts that allocated fresh",
            ),
            pool_trims: r.counter(
                "evilbloom_bufferpool_trims_total",
                "Check-ins that shrank a buffer inflated past the high-water mark",
            ),
            registry: r,
        }
    }

    /// The registry holding every serving-layer metric.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one executed request: bumps the opcode's counter and latency
    /// histogram.
    pub(crate) fn observe_request(&self, op: usize, elapsed: Duration) {
        self.requests[op].inc();
        self.latency_ns[op].record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_maps_into_the_metric_arrays() {
        let metrics = ServerMetrics::new();
        for (command, expected) in [
            (Command::Ping, 0),
            (Command::Insert(b"x"), 1),
            (Command::Query(b"x"), 2),
            (Command::InsertBatch(vec![]), 3),
            (Command::QueryBatch(vec![]), 4),
            (Command::Stats, 5),
            (Command::RotateBegin { shard: 0 }, 6),
            (Command::RotateComplete { shard: 0 }, 6),
            (Command::Snapshot, 7),
            (Command::Metrics, 8),
            (Command::Delete(b"x"), 9),
            (Command::DeleteBatch(vec![]), 10),
            (Command::Trace, 11),
        ] {
            let op = op_of(&command);
            assert_eq!(op, expected, "{command:?}");
            metrics.observe_request(op, Duration::from_nanos(100));
        }
        let text = metrics.registry().render();
        assert!(text.contains(r#"evilbloom_server_requests_total{op="rotate"} 2"#), "{text}");
        assert!(text.contains(r#"evilbloom_server_requests_total{op="metrics"} 1"#), "{text}");
        assert!(text.contains(r#"evilbloom_server_requests_total{op="delete"} 1"#), "{text}");
        assert!(text.contains(r#"evilbloom_server_requests_total{op="mdelete"} 1"#), "{text}");
        assert!(text.contains(r#"evilbloom_server_requests_total{op="trace"} 1"#), "{text}");
    }

    #[test]
    fn reactor_and_pool_families_render_at_zero() {
        // The exposition's shape must not depend on the backend: a threaded
        // server still renders the reactor and buffer-pool families.
        let text = ServerMetrics::new().registry().render();
        for name in [
            "evilbloom_reactor_wakeups_total 0",
            "evilbloom_reactor_backpressure_total 0",
            "evilbloom_bufferpool_hits_total 0",
            "evilbloom_server_uptime_seconds 0",
            "evilbloom_server_busy_rejections_total 0",
            "evilbloom_server_slow_consumer_evictions_total 0",
            "evilbloom_server_degraded_refusals_total 0",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
    }
}

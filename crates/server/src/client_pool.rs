//! A small client-side connection pool: checkout/checkin with
//! dead-connection replacement, plus pipelined batch helpers that spread
//! one logical request over several sockets.
//!
//! One pipelined connection already hides per-request latency, but it is
//! still a single TCP stream: one in-order byte pipe, one server-side
//! worker (threaded backend) or reactor event source. Spreading the frames
//! of a large batch over a few pooled connections lets the server work the
//! lanes independently — this is how `examples/remote_attack.rs` delivers
//! the paper's crafted insertions ([`ClientPool::minsert_pooled`]) and
//! measures the induced false-positive rate ([`ClientPool::mquery_pooled`]).
//!
//! The pool is deliberately synchronous and single-owner (`&mut self`): it
//! models one attacking/operating process, not a shared middleware pool.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

use crate::client::{Client, ClientConfig, ClientError};
use crate::wire::{Command, Response, WireError};

/// Health counters for one [`ClientPool`] (monotonic since `connect`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolHealth {
    /// Pooled connections that failed the checkout liveness probe and
    /// were dropped.
    pub dead_dropped: u64,
    /// Fresh connections dialled to replace dead ones (eager replacement
    /// plus the replacement dial inside a validated checkout).
    pub replacements: u64,
}

/// A pool of connections to one server, with checkout/checkin reuse,
/// dead-connection replacement, and pipelined pooled batch helpers.
pub struct ClientPool {
    addr: SocketAddr,
    config: ClientConfig,
    idle: Vec<Client>,
    target: usize,
    health: PoolHealth,
}

impl ClientPool {
    /// Resolves `addr` and eagerly dials `target` connections (the pool's
    /// steady-state size; `checkout` dials extra ones on demand and
    /// `checkin` drops extras beyond it). Uses [`ClientConfig::default`]
    /// deadlines; see [`ClientPool::connect_with`] to tune them.
    pub fn connect(addr: impl ToSocketAddrs, target: usize) -> io::Result<ClientPool> {
        ClientPool::connect_with(addr, target, ClientConfig::default())
    }

    /// Like [`ClientPool::connect`], with explicit connect/request
    /// deadlines for every dial the pool ever makes.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        target: usize,
        config: ClientConfig,
    ) -> io::Result<ClientPool> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let target = target.max(1);
        let mut idle = Vec::with_capacity(target);
        for _ in 0..target {
            idle.push(Client::connect_with(addr, &config)?);
        }
        Ok(ClientPool { addr, config, idle, target, health: PoolHealth::default() })
    }

    /// The server address every pooled connection dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.idle.len()
    }

    /// Dead-connection counters: probes failed, replacements dialled.
    pub fn health(&self) -> PoolHealth {
        self.health
    }

    fn dial(&self) -> io::Result<Client> {
        Client::connect_with(self.addr, &self.config)
    }

    /// Checks a connection out of the pool, dialing a fresh one when the
    /// pool is empty. The connection is handed over as-is (no liveness
    /// probe); use [`ClientPool::checkout_validated`] after a server may
    /// have restarted.
    pub fn checkout(&mut self) -> io::Result<Client> {
        match self.idle.pop() {
            Some(client) => Ok(client),
            None => self.dial(),
        }
    }

    /// Like [`ClientPool::checkout`], but pings the pooled connection
    /// first: a dead one (server restarted, idle timeout, reset) is dropped
    /// and **eagerly replaced** with a fresh dial instead of surfacing as a
    /// confusing mid-request transport error. Replacements are counted in
    /// [`ClientPool::health`], so operators can see churn (a steadily
    /// climbing `replacements` means the server keeps resetting idle
    /// connections).
    pub fn checkout_validated(&mut self) -> io::Result<Client> {
        let mut dead = 0u64;
        let live = loop {
            match self.idle.pop() {
                Some(mut client) => {
                    if client.ping().is_ok() {
                        break Some(client);
                    }
                    // Dead connection: drop it and keep probing the pool.
                    dead += 1;
                }
                None => break None,
            }
        };
        self.health.dead_dropped += dead;
        // Eagerly refill what the probe culled, so the next checkout does
        // not pay the same dial latency again. Best-effort: if the server
        // is down, the failed dials are not worth surfacing here — the
        // caller's own dial below will report the condition.
        for _ in 0..dead {
            if self.idle.len() >= self.target {
                break;
            }
            match self.dial() {
                Ok(fresh) => {
                    self.idle.push(fresh);
                    self.health.replacements += 1;
                }
                Err(_) => break,
            }
        }
        match live {
            Some(client) => Ok(client),
            None => {
                let client = self.dial()?;
                if dead > 0 {
                    self.health.replacements += 1;
                }
                Ok(client)
            }
        }
    }

    /// Returns a connection to the pool. Connections beyond the target size
    /// are dropped. Do **not** check in a connection after an error on it —
    /// its stream may hold half-read responses; drop it instead and let the
    /// pool dial a replacement.
    pub fn checkin(&mut self, client: Client) {
        if self.idle.len() < self.target {
            self.idle.push(client);
        }
    }

    /// Pipelined pooled batch insert: splits `items` into `MINSERT` frames
    /// of `frame_items` and spreads them round-robin over up to the pool's
    /// target number of connections, all frames in flight before the first
    /// response is awaited. Returns the total number of fresh bits set.
    pub fn minsert_pooled<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
        frame_items: usize,
    ) -> Result<u64, ClientError> {
        let chunks: Vec<&[I]> = items.chunks(frame_items.max(1)).collect();
        let mut lanes = self.lanes(chunks.len())?;
        let lane_count = lanes.len();
        for (i, chunk) in chunks.iter().enumerate() {
            let borrowed: Vec<&[u8]> = chunk.iter().map(AsRef::as_ref).collect();
            lanes[i % lane_count].send(&Command::InsertBatch(borrowed))?;
        }
        let mut fresh_bits = 0u64;
        for (i, chunk) in chunks.iter().enumerate() {
            match lanes[i % lane_count].recv()? {
                Response::BatchInserted { items: n, fresh_bits: fresh }
                    if n as usize == chunk.len() =>
                {
                    fresh_bits += fresh;
                }
                Response::BatchInserted { .. } => {
                    return Err(ClientError::Wire(WireError::Malformed("item count mismatch")))
                }
                other => {
                    return Err(ClientError::Unexpected {
                        expected: "MINSERTED",
                        got: other.name(),
                    })
                }
            }
        }
        self.checkin_all(lanes);
        Ok(fresh_bits)
    }

    /// Pipelined pooled batch query: like [`ClientPool::minsert_pooled`]
    /// but with `MQUERY` frames; answers come back in `items` order.
    pub fn mquery_pooled<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
        frame_items: usize,
    ) -> Result<Vec<bool>, ClientError> {
        let chunks: Vec<&[I]> = items.chunks(frame_items.max(1)).collect();
        let mut lanes = self.lanes(chunks.len())?;
        let lane_count = lanes.len();
        for (i, chunk) in chunks.iter().enumerate() {
            let borrowed: Vec<&[u8]> = chunk.iter().map(AsRef::as_ref).collect();
            lanes[i % lane_count].send(&Command::QueryBatch(borrowed))?;
        }
        let mut answers = Vec::with_capacity(items.len());
        for (i, chunk) in chunks.iter().enumerate() {
            match lanes[i % lane_count].recv()? {
                Response::BatchFound(found) if found.len() == chunk.len() => {
                    answers.extend(found);
                }
                Response::BatchFound(_) => {
                    return Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
                }
                other => {
                    return Err(ClientError::Unexpected { expected: "MFOUND", got: other.name() })
                }
            }
        }
        self.checkin_all(lanes);
        Ok(answers)
    }

    /// Pipelined pooled batch delete: like [`ClientPool::mquery_pooled`]
    /// but with `MDELETE` frames; answers come back in `items` order.
    /// [`ClientError::Unsupported`] when the served family has no deletion
    /// (the lanes that answered are dropped, not checked in, since
    /// responses may still be in flight on the others).
    pub fn mdelete_pooled<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
        frame_items: usize,
    ) -> Result<Vec<bool>, ClientError> {
        let chunks: Vec<&[I]> = items.chunks(frame_items.max(1)).collect();
        let mut lanes = self.lanes(chunks.len())?;
        let lane_count = lanes.len();
        for (i, chunk) in chunks.iter().enumerate() {
            let borrowed: Vec<&[u8]> = chunk.iter().map(AsRef::as_ref).collect();
            lanes[i % lane_count].send(&Command::DeleteBatch(borrowed))?;
        }
        let mut answers = Vec::with_capacity(items.len());
        for (i, chunk) in chunks.iter().enumerate() {
            match lanes[i % lane_count].recv()? {
                Response::BatchDeleted(deleted) if deleted.len() == chunk.len() => {
                    answers.extend(deleted);
                }
                Response::BatchDeleted(_) => {
                    return Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
                }
                other => {
                    return Err(ClientError::Unexpected { expected: "MDELETED", got: other.name() })
                }
            }
        }
        self.checkin_all(lanes);
        Ok(answers)
    }

    /// Health snapshot over one pooled connection (see [`Client::stats`]);
    /// stats are store-global, so one lane suffices.
    pub fn stats(&mut self) -> Result<crate::wire::WireStats, ClientError> {
        let mut client = self.checkout_validated()?;
        let stats = client.stats()?;
        self.checkin(client);
        Ok(stats)
    }

    /// Starts a key rotation on one shard over one pooled connection (see
    /// [`Client::rotate_begin`]).
    pub fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError> {
        let mut client = self.checkout_validated()?;
        let generation = client.rotate_begin(shard)?;
        self.checkin(client);
        Ok(generation)
    }

    /// Completes a shard's rotation over one pooled connection (see
    /// [`Client::rotate_complete`]).
    pub fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError> {
        let mut client = self.checkout_validated()?;
        let completed = client.rotate_complete(shard)?;
        self.checkin(client);
        Ok(completed)
    }

    /// Asks the server for a durable snapshot over one pooled connection
    /// (see [`Client::snapshot`]). Snapshots are store-global, so one lane
    /// suffices no matter how many connections the pool holds.
    pub fn snapshot(&mut self) -> Result<crate::wire::WireSnapshot, ClientError> {
        let mut client = self.checkout_validated()?;
        let info = client.snapshot()?;
        self.checkin(client);
        Ok(info)
    }

    /// Scrapes the server's telemetry exposition over one pooled connection
    /// (see [`Client::metrics`]); the scrape is server-global, so one lane
    /// suffices.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let mut client = self.checkout_validated()?;
        let text = client.metrics()?;
        self.checkin(client);
        Ok(text)
    }

    /// Fetches the server's forensic trace over one pooled connection (see
    /// [`Client::trace`]); like a metrics scrape, it is server-global.
    pub fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        let mut client = self.checkout_validated()?;
        let trace = client.trace()?;
        self.checkin(client);
        Ok(trace)
    }

    /// Checks out the connections a pooled call will stripe over: the pool
    /// target, but never more than there are frames to send.
    fn lanes(&mut self, frames: usize) -> Result<Vec<Client>, ClientError> {
        let count = self.target.min(frames.max(1));
        let mut lanes = Vec::with_capacity(count);
        for _ in 0..count {
            lanes.push(self.checkout_validated()?);
        }
        Ok(lanes)
    }

    fn checkin_all(&mut self, lanes: Vec<Client>) {
        for lane in lanes {
            self.checkin(lane);
        }
    }
}

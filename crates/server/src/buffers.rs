//! Pooled read/write buffers shared by both serving backends.
//!
//! Every connection needs a receive accumulator and a response buffer. On a
//! churning server that is two heap allocations (plus regrowth) per accepted
//! socket; with thousands of concurrent connections it is also unbounded
//! retained capacity once a single large batch frame has inflated a buffer.
//! The pool recycles buffers across connections (a free list) and bounds
//! what recycling can retain (high-water trimming): a buffer grown past the
//! per-buffer high-water mark is shrunk back on check-in, and the free list
//! itself is capped.

use std::sync::{Arc, Mutex};

use evilbloom_metrics::Counter;

/// Default capacity a pooled buffer starts with — enough for typical
/// single-op traffic without regrowth.
pub(crate) const DEFAULT_BUFFER_CAPACITY: usize = 16 * 1024;
/// Default per-buffer high-water mark: a buffer inflated past this by a
/// large batch frame is trimmed back on check-in instead of pinning the
/// capacity forever.
pub(crate) const DEFAULT_TRIM_CAPACITY: usize = 256 * 1024;
/// Default cap on buffers the free list retains.
pub(crate) const DEFAULT_MAX_IDLE: usize = 64;

/// A free list of recycled `Vec<u8>` buffers with high-water trimming.
#[derive(Debug)]
pub(crate) struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    trim_capacity: usize,
    /// Checkouts served from the free list / by fresh allocation, and
    /// check-ins that trimmed. Unregistered no-op counters by default;
    /// `Server::spawn` wires the registered handles in.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    trims: Arc<Counter>,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(DEFAULT_MAX_IDLE, DEFAULT_TRIM_CAPACITY)
    }
}

impl BufferPool {
    /// A pool retaining at most `max_idle` buffers, each trimmed back to
    /// `trim_capacity` when a workload inflated it further.
    pub(crate) fn new(max_idle: usize, trim_capacity: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_idle,
            trim_capacity,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            trims: Arc::new(Counter::new()),
        }
    }

    /// The default-sized pool reporting into the given registered counters.
    pub(crate) fn instrumented(
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        trims: Arc<Counter>,
    ) -> Self {
        BufferPool { hits, misses, trims, ..BufferPool::default() }
    }

    /// Checks a cleared buffer out of the pool (or allocates a fresh one on
    /// a cold pool).
    pub(crate) fn checkout(&self) -> Vec<u8> {
        let recycled = self.free.lock().expect("buffer pool poisoned").pop();
        match recycled {
            Some(buf) => {
                self.hits.inc();
                buf
            }
            None => {
                self.misses.inc();
                Vec::with_capacity(DEFAULT_BUFFER_CAPACITY)
            }
        }
    }

    /// Returns a buffer to the free list: cleared, trimmed back to the
    /// high-water mark if a large frame inflated it, dropped outright when
    /// the free list is full.
    pub(crate) fn checkin(&self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() > self.trim_capacity {
            buf.shrink_to(self.trim_capacity);
            self.trims.inc();
        }
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.max_idle {
            free.push(buf);
        }
    }

    /// Buffers currently idle in the pool (test introspection).
    #[cfg(test)]
    pub(crate) fn idle(&self) -> usize {
        self.free.lock().expect("buffer pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_checked_in_buffers() {
        let pool = BufferPool::new(4, DEFAULT_TRIM_CAPACITY);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"stale bytes");
        let capacity = buf.capacity();
        pool.checkin(buf);
        assert_eq!(pool.idle(), 1);

        let buf = pool.checkout();
        assert!(buf.is_empty(), "recycled buffers come back cleared");
        assert_eq!(buf.capacity(), capacity, "the allocation was recycled");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn high_water_trimming_bounds_retained_capacity() {
        let pool = BufferPool::new(4, 1024);
        let mut buf = pool.checkout();
        buf.resize(64 * 1024, 0); // a large batch frame inflated the buffer
        pool.checkin(buf);
        let buf = pool.checkout();
        assert!(
            buf.capacity() <= 2 * 1024,
            "capacity {} was not trimmed back to the high-water mark",
            buf.capacity()
        );
    }

    #[test]
    fn instrumented_pool_counts_hits_misses_and_trims() {
        let (hits, misses, trims) =
            (Arc::new(Counter::new()), Arc::new(Counter::new()), Arc::new(Counter::new()));
        let pool =
            BufferPool::instrumented(Arc::clone(&hits), Arc::clone(&misses), Arc::clone(&trims));
        let mut buf = pool.checkout(); // cold pool: miss
        buf.resize(DEFAULT_TRIM_CAPACITY * 2, 0);
        pool.checkin(buf); // inflated past the high-water mark: trim
        drop(pool.checkout()); // recycled: hit
        assert_eq!((hits.get(), misses.get(), trims.get()), (1, 1, 1));
    }

    #[test]
    fn free_list_is_capped() {
        let pool = BufferPool::new(2, 1024);
        for _ in 0..5 {
            pool.checkin(Vec::new());
        }
        assert_eq!(pool.idle(), 2, "buffers past the cap are dropped, not retained");
    }
}

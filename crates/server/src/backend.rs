//! Backend selection and the acceptor loop both backends share.
//!
//! The serving layer has two I/O backends behind one [`crate::ServerConfig`]:
//!
//! * [`Backend::Threaded`] — the portable fallback: an acceptor thread hands
//!   connections to a fixed pool of blocking worker threads; one worker
//!   serves one connection at a time.
//! * [`Backend::Async`] — a Linux epoll reactor (`reactor.rs` in the
//!   sources): every connection is a non-blocking state machine multiplexed
//!   onto N reactor threads, so open-connection count is bounded by file
//!   descriptors, not threads (C10k-scale).
//!
//! Both backends accept through the same resilient accept loop, which
//! classifies `accept()` errors so a transient failure (fd exhaustion under
//! an EMFILE storm, a signal) backs off instead of spinning a hot error
//! loop.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::Ordering;
use std::time::Duration;

use evilbloom_metrics::log_warn;

use crate::server::Inner;

/// Which I/O backend a server runs its connections on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Portable threaded backend: acceptor + blocking worker pool, one
    /// worker per active connection. The default.
    #[default]
    Threaded,
    /// Linux epoll reactor: non-blocking connection state machines
    /// multiplexed onto N reactor shards. `Server::spawn` returns
    /// [`io::ErrorKind::Unsupported`] on other platforms.
    Async,
}

impl Backend {
    /// Every backend, for CLIs and parametrized tests.
    pub const ALL: [Backend; 2] = [Backend::Threaded, Backend::Async];

    /// Short lowercase name (`"threaded"` / `"async"`), the [`FromStr`]
    /// inverse.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Async => "async",
        }
    }

    /// Whether this backend can run on the current platform.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Threaded => true,
            Backend::Async => cfg!(target_os = "linux"),
        }
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Backend::Threaded),
            "async" => Ok(Backend::Async),
            other => Err(format!("unknown backend {other:?} (expected \"threaded\" or \"async\")")),
        }
    }
}

/// The soft limit on open file descriptors for this process (parsed from
/// `/proc/self/limits`; `None` where that does not exist or does not
/// parse). Every loopback connection a test or benchmark opens costs *two*
/// fds in-process (the client side and the accepted side), so
/// high-connection-count harnesses check this and scale down or skip
/// instead of crashing into `EMFILE`.
pub fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Fds reserved for everything that is *not* a loopback connection pair
/// (stdio, listeners, epoll fds, wake pipes, the test harness, …).
const FD_SLACK: u64 = 256;

/// How many same-process loopback connections the fd soft limit can hold
/// (two fds per connection — client side plus accepted side — after the
/// slack is reserved). `None` when the limit is unknown; callers should
/// then proceed optimistically.
pub fn loopback_connection_budget() -> Option<u64> {
    fd_soft_limit().map(|limit| limit.saturating_sub(FD_SLACK) / 2)
}

/// What the acceptor should do after an `accept()` call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptAction {
    /// Transient per-connection condition (EINTR, the peer aborted the
    /// handshake): retry immediately, nothing is wrong with the listener.
    Retry,
    /// No pending connection (`WouldBlock` on the non-blocking listener):
    /// sleep one poll tick, then look again.
    Idle,
    /// A resource error (EMFILE/ENFILE fd exhaustion, ENOMEM, …): the next
    /// accept will likely fail too, so back off for a poll tick — and log
    /// once — instead of spinning a hot error loop.
    Backoff,
}

/// Classifies an `accept()` error into the action that avoids both dropped
/// connections and hot error loops. Covered by unit tests below; used by
/// both backends' acceptors.
pub(crate) fn classify_accept_error(error: &io::Error) -> AcceptAction {
    match error.kind() {
        io::ErrorKind::WouldBlock => AcceptAction::Idle,
        // The handshake died before we accepted it — specific to that one
        // connection, the listener is fine.
        io::ErrorKind::Interrupted
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset => AcceptAction::Retry,
        // Everything else (EMFILE and friends surface as uncategorized
        // errors) is a resource problem that will not clear within one
        // accept call: back off.
        _ => AcceptAction::Backoff,
    }
}

/// Runs the shared non-blocking accept loop until shutdown: accepted
/// streams go to `deliver` (which returns `false` when the receiving side
/// is gone), errors are classified, and persistent resource errors log once
/// per streak instead of once per failure.
pub(crate) fn acceptor_loop(
    listener: &TcpListener,
    inner: &Inner,
    poll_interval: Duration,
    mut deliver: impl FnMut(TcpStream) -> bool,
) {
    // The idle tick bounds accept latency, and with it the sustained accept
    // rate: a connect storm can only park `listen(2)`'s backlog (~128)
    // between wake-ups before further SYNs face retransmission delays. A
    // short tick keeps C10k-scale herds connecting promptly and checks the
    // shutdown flag more often, at the cost of a few hundred idle wake-ups
    // per second. The *backoff* tick stays at the full poll interval:
    // under fd exhaustion, hammering accept() faster helps nobody.
    let idle_tick = poll_interval.min(Duration::from_millis(2));
    let mut logged_backoff = false;
    while !inner.shutdown.load(Ordering::SeqCst) {
        // Fault-injection point: a chaos plan can make accept() itself fail
        // (the socket, if one was pending, is dropped — the peer sees a
        // reset), exercising the same classify-and-back-off path a real
        // EMFILE storm takes.
        let accepted = match evilbloom_fault::check_io(evilbloom_fault::FaultPoint::Accept) {
            Ok(()) => listener.accept(),
            Err(injected) => Err(injected),
        };
        match accepted {
            Ok((stream, _peer)) => {
                logged_backoff = false;
                if !deliver(stream) {
                    break;
                }
            }
            Err(error) => match classify_accept_error(&error) {
                AcceptAction::Retry => {}
                AcceptAction::Idle => std::thread::sleep(idle_tick),
                AcceptAction::Backoff => {
                    if !logged_backoff {
                        log_warn!("accept failed ({error}); backing off");
                        logged_backoff = true;
                    }
                    std::thread::sleep(poll_interval);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(backend.name().parse::<Backend>(), Ok(backend));
        }
        assert!("epoll".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Threaded);
        assert!(Backend::Threaded.is_supported());
    }

    #[test]
    fn would_block_means_idle() {
        let e = io::Error::new(io::ErrorKind::WouldBlock, "no pending connection");
        assert_eq!(classify_accept_error(&e), AcceptAction::Idle);
    }

    #[test]
    fn per_connection_errors_retry_immediately() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
        ] {
            let e = io::Error::new(kind, "transient");
            assert_eq!(classify_accept_error(&e), AcceptAction::Retry, "{kind:?}");
        }
    }

    #[test]
    fn fd_exhaustion_backs_off() {
        // EMFILE (24) and ENFILE (23) on Linux: "too many open files" has no
        // stable io::ErrorKind, so it must fall through to Backoff — a retry
        // loop here would spin at 100% CPU for as long as fds stay scarce.
        for errno in [23, 24] {
            let e = io::Error::from_raw_os_error(errno);
            assert_eq!(classify_accept_error(&e), AcceptAction::Backoff, "errno {errno}");
        }
    }
}

//! [`RemoteStore`]: one interface over a single pipelined [`Client`] and a
//! striped [`ClientPool`].
//!
//! The client and the pool grew matching method pairs (`insert_batch` /
//! `minsert_pooled`, `query_batch` / `mquery_pooled`, stats, rotate,
//! snapshot, metrics) that examples and bench workloads kept duplicating
//! call sites for. `RemoteStore` is the shared contract: code written
//! against it — an attack driver, a bench workload — runs unchanged over
//! one socket or a pool of them, so "does striping change the measured
//! drift?" is a one-line swap instead of a second code path.
//!
//! Batch methods take the whole logical batch; how it is framed is the
//! implementation's business (the client sends one frame, the pool splits
//! into [`POOL_FRAME_ITEMS`]-item frames striped round-robin over its
//! lanes).

use crate::client::{Client, ClientError};
use crate::client_pool::ClientPool;
use crate::wire::{WireSnapshot, WireStats};

/// Items per `MINSERT`/`MQUERY`/`MDELETE` frame when a [`ClientPool`]
/// splits a logical batch: large enough to amortise framing, small enough
/// that several frames exist to stripe over the lanes.
pub const POOL_FRAME_ITEMS: usize = 512;

/// The remote-store operations shared by [`Client`] and [`ClientPool`].
///
/// All methods are `&mut self`: both implementations own their sockets and
/// model one operating (or attacking) process.
pub trait RemoteStore {
    /// Batch insert; returns the fresh cells the batch set across shards.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn minsert<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<u64, ClientError>;

    /// Batch membership query; answers in `items` order.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn mquery<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError>;

    /// Batch delete; answers in `items` order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unsupported`] on filter families without deletion.
    fn mdelete<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError>;

    /// Health snapshot, including the served filter family and per-shard
    /// pollution alarms.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn stats(&mut self) -> Result<WireStats, ClientError>;

    /// Starts a key rotation on one shard.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError>;

    /// Completes a shard's rotation.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError>;

    /// Asks the server for a durable snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server has no persistence enabled.
    fn snapshot(&mut self) -> Result<WireSnapshot, ClientError>;

    /// Scrapes the server's telemetry text exposition.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn metrics(&mut self) -> Result<String, ClientError>;

    /// Fetches the server's forensic trace (flight-recorder events, the
    /// per-connection suspect ranking and the drift timeline).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the transport or the server.
    fn trace(&mut self) -> Result<crate::WireTrace, ClientError>;
}

impl RemoteStore for Client {
    fn minsert<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<u64, ClientError> {
        Ok(self.insert_batch(items)?.fresh_bits)
    }

    fn mquery<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.query_batch(items)
    }

    fn mdelete<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.delete_batch(items)
    }

    fn stats(&mut self) -> Result<WireStats, ClientError> {
        Client::stats(self)
    }

    fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError> {
        Client::rotate_begin(self, shard)
    }

    fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError> {
        Client::rotate_complete(self, shard)
    }

    fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        Client::snapshot(self)
    }

    fn metrics(&mut self) -> Result<String, ClientError> {
        Client::metrics(self)
    }

    fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        Client::trace(self)
    }
}

impl RemoteStore for ClientPool {
    fn minsert<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<u64, ClientError> {
        self.minsert_pooled(items, POOL_FRAME_ITEMS)
    }

    fn mquery<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.mquery_pooled(items, POOL_FRAME_ITEMS)
    }

    fn mdelete<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.mdelete_pooled(items, POOL_FRAME_ITEMS)
    }

    fn stats(&mut self) -> Result<WireStats, ClientError> {
        ClientPool::stats(self)
    }

    fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError> {
        ClientPool::rotate_begin(self, shard)
    }

    fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError> {
        ClientPool::rotate_complete(self, shard)
    }

    fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        ClientPool::snapshot(self)
    }

    fn metrics(&mut self) -> Result<String, ClientError> {
        ClientPool::metrics(self)
    }

    fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        ClientPool::trace(self)
    }
}

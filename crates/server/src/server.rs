//! The TCP server in front of any [`ServeStore`] (a
//! [`evilbloom_store::BloomStore`] of any filter family), with two I/O
//! backends behind one configuration surface (see [`Backend`]).
//!
//! **Threaded** (default, portable): one acceptor thread hands connections
//! to a fixed pool of worker threads over an mpsc channel; each worker
//! serves one connection at a time with blocking I/O. A connection is a
//! pipelined request loop — every socket read drains *all* complete frames
//! from the receive buffer, executes them against the shared store (batch
//! commands visit each shard lock once), and flushes the buffered responses
//! in one write. Reads tick on a short timeout so every connection observes
//! the shutdown flag promptly; [`ServerHandle::shutdown`] is therefore
//! bounded, not best-effort.
//!
//! **Async** (Linux): the same acceptor feeds an epoll reactor (see
//! `reactor.rs` in the sources) where every connection is a non-blocking
//! state machine, so open-connection count scales to C10k and beyond
//! instead of being capped by the worker pool. Both backends share the
//! frame-drain/execute path and the recycled-buffer pool, and speak the
//! identical wire protocol.
//!
//! Threaded response writes are blocking: a peer that pipelines without
//! ever receiving can stall its own connection (and the worker serving it)
//! once the un-received responses overflow the socket buffers. That is the
//! peer's contract to keep — see the burst-bound note in [`crate::client`]
//! — and it wedges only that worker, never the acceptor or other
//! connections' workers. The async backend instead applies backpressure:
//! past a high-water mark of pending response bytes it simply stops
//! reading from that connection until the peer drains them.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evilbloom_fault::{self as fault, FaultPoint};
use evilbloom_store::{BackendKind, ServeStore};
use evilbloom_trace::{FlightRecorder, SuspectTable, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::{acceptor_loop, Backend};
use crate::buffers::BufferPool;
use crate::conn::{drain_frames, READ_CHUNK};
use crate::metrics::ServerMetrics;
use crate::wire::{Response, DEFAULT_MAX_FRAME_BYTES};

/// Connections the suspect table tracks at once. Eviction drops the
/// least-suspicious row, so churning connections cannot displace an
/// attacker's evidence.
const SUSPECT_CAPACITY: usize = 64;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Which I/O backend serves connections (default: [`Backend::Threaded`],
    /// the portable fallback; [`Backend::Async`] is the Linux epoll
    /// reactor).
    pub backend: Backend,
    /// Degree of parallelism: worker threads for the threaded backend (each
    /// serves one connection at a time), reactor shards for the async
    /// backend (each multiplexes any number of connections).
    pub workers: usize,
    /// Per-frame payload cap (a hostile length prefix is rejected, and the
    /// connection closed, before any allocation).
    pub max_frame_bytes: u32,
    /// Seed of the RNG that draws fresh key material for `ROTATE` commands
    /// on hardened stores.
    pub rotation_seed: u64,
    /// Tick at which the acceptor's non-blocking accept loop, idle threaded
    /// connections' read timeouts and the reactors' `epoll_wait` calls
    /// re-check the shutdown flag — the upper bound on how long
    /// [`ServerHandle::shutdown`] waits for an idle server.
    pub poll_interval: Duration,
    /// Filter-family selector: the backend this deployment expects to
    /// serve. `None` (default) serves whatever store it is handed;
    /// `Some(kind)` makes [`Server::spawn`] refuse a store of a different
    /// family with [`io::ErrorKind::InvalidInput`] — a config/deployment
    /// assertion, since `DELETE` support and persistence semantics depend
    /// on the family. The served family is surfaced remotely in `STATS`
    /// and as the `evilbloom_store_backend_info` metric.
    pub store_backend: Option<BackendKind>,
    /// Requests whose execution takes at least this long are logged at
    /// `warn` and recorded as `slow-request` flight-recorder events.
    pub slow_request_threshold: Duration,
    /// Capacity of the forensic flight recorder (rounded up to a power of
    /// two, minimum 8): how many recent events a `TRACE` scrape can replay.
    pub trace_events: usize,
    /// Admission control for the threaded backend: the most connections
    /// allowed to sit accepted-but-unclaimed in the acceptor→worker queue.
    /// Past it the acceptor answers a typed `BUSY` frame (with the
    /// [`ServerConfig::busy_retry_after`] hint) and closes, instead of
    /// queueing without bound behind a saturated worker pool. `0` disables
    /// the bound.
    pub max_pending_conns: usize,
    /// The retry-after hint carried in `BUSY` responses.
    pub busy_retry_after: Duration,
    /// Graceful degradation for the async backend: a connection pinned at
    /// the pending-write high-water mark (the peer stopped reading its
    /// responses) for longer than this grace period is evicted, freeing its
    /// buffers instead of holding them hostage indefinitely.
    pub slow_consumer_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: Backend::Threaded,
            workers: 4,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            rotation_seed: 0x5EED_0F0D_D5EE_D545,
            poll_interval: Duration::from_millis(25),
            store_backend: None,
            slow_request_threshold: Duration::from_millis(100),
            trace_events: 1024,
            max_pending_conns: 1024,
            busy_retry_after: Duration::from_millis(100),
            slow_consumer_grace: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// The default configuration on the given backend.
    pub fn with_backend(backend: Backend) -> Self {
        ServerConfig { backend, ..ServerConfig::default() }
    }

    /// Sets the expected filter family (see
    /// [`ServerConfig::store_backend`]).
    pub fn expect_store_backend(mut self, kind: BackendKind) -> Self {
        self.store_backend = Some(kind);
        self
    }
}

/// Shared state of a running server (both backends).
pub(crate) struct Inner {
    pub(crate) store: Arc<dyn ServeStore>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) rotation_rng: Mutex<StdRng>,
    pub(crate) requests_served: AtomicU64,
    pub(crate) max_frame_bytes: u32,
    pub(crate) poll_interval: Duration,
    /// Recycled per-connection read/write buffers, shared by both backends.
    pub(crate) buffers: BufferPool,
    /// Serving-layer telemetry (the store carries its own registry).
    pub(crate) metrics: ServerMetrics,
    /// When the server spawned, for the uptime gauge and `STATS` field.
    pub(crate) started: Instant,
    /// The forensic flight recorder, shared with the store (which records
    /// alarm, fsync-stall and snapshot events into it).
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Per-connection drift attribution: fresh-bits-per-insert EWMAs and
    /// the top-K suspect ranking `TRACE` exposes.
    pub(crate) suspects: SuspectTable,
    /// Next connection id minus one; ids are allocated from 1 (0 means "no
    /// connection" in trace events).
    next_conn_id: AtomicU64,
    /// See [`ServerConfig::slow_request_threshold`].
    pub(crate) slow_request_threshold: Duration,
    /// See [`ServerConfig::busy_retry_after`].
    pub(crate) busy_retry_after: Duration,
    /// See [`ServerConfig::slow_consumer_grace`].
    pub(crate) slow_consumer_grace: Duration,
}

impl Inner {
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Allocates the next connection id (both backends call this per
    /// accepted socket, so ids are unique across backends and shards).
    pub(crate) fn next_conn_id(&self) -> u64 {
        self.next_conn_id.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// The TCP serving layer: binds a listener and spawns the configured
/// backend's threads. See [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// serving `store` — any [`ServeStore`], so a `BloomStore` of any
    /// filter family — on the configured backend. Returns a handle owning
    /// the background threads. Asking for [`Backend::Async`] on a
    /// non-Linux platform fails with [`io::ErrorKind::Unsupported`]; a
    /// store whose family contradicts `config.store_backend` fails with
    /// [`io::ErrorKind::InvalidInput`].
    pub fn spawn<S: ServeStore + 'static>(
        store: Arc<S>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Server::spawn_dyn(store, addr, config)
    }

    /// [`Server::spawn`] for a store whose filter family was chosen at
    /// runtime (an already-erased `Arc<dyn ServeStore>`).
    pub fn spawn_dyn(
        store: Arc<dyn ServeStore>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        if let Some(expected) = config.store_backend {
            let actual = store.backend_kind();
            if actual != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("config expects a {expected} store, got {actual}"),
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = ServerMetrics::new();
        let buffers = BufferPool::instrumented(
            Arc::clone(&metrics.pool_hits),
            Arc::clone(&metrics.pool_misses),
            Arc::clone(&metrics.pool_trims),
        );
        // The recorder is shared with the store before serving starts, so
        // store-side events (alarm trips, fsync stalls, snapshots) land in
        // the same timeline as connection and batch events.
        let recorder = Arc::new(FlightRecorder::new(config.trace_events));
        store.metrics().attach_recorder(Arc::clone(&recorder));
        let inner = Arc::new(Inner {
            store,
            shutdown: AtomicBool::new(false),
            rotation_rng: Mutex::new(StdRng::seed_from_u64(config.rotation_seed)),
            requests_served: AtomicU64::new(0),
            max_frame_bytes: config.max_frame_bytes,
            poll_interval: config.poll_interval,
            buffers,
            metrics,
            started: Instant::now(),
            recorder,
            suspects: SuspectTable::new(SUSPECT_CAPACITY),
            next_conn_id: AtomicU64::new(0),
            slow_request_threshold: config.slow_request_threshold,
            busy_retry_after: config.busy_retry_after,
            slow_consumer_grace: config.slow_consumer_grace,
        });

        match config.backend {
            Backend::Threaded => {
                let threads = spawn_threaded(&inner, listener, &config)?;
                Ok(ServerHandle {
                    local_addr,
                    inner,
                    threads,
                    #[cfg(target_os = "linux")]
                    wakers: Vec::new(),
                })
            }
            #[cfg(target_os = "linux")]
            Backend::Async => {
                let (threads, wakers) =
                    crate::reactor::spawn(&inner, listener, config.workers, config.poll_interval)?;
                Ok(ServerHandle { local_addr, inner, threads, wakers })
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Async => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the async backend needs Linux epoll; use Backend::Threaded here",
            )),
        }
    }
}

/// Spawns the threaded backend: worker pool plus the resilient acceptor.
fn spawn_threaded(
    inner: &Arc<Inner>,
    listener: TcpListener,
    config: &ServerConfig,
) -> io::Result<Vec<JoinHandle<()>>> {
    // Configure the listener before any thread spawns, so a failure
    // surfaces as an `Err` from `Server::spawn` instead of a server that
    // looks healthy but never accepts.
    listener.set_nonblocking(true)?;
    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    // Admission control: connections sitting accepted-but-unclaimed in the
    // worker queue. The acceptor increments before sending, a worker
    // decrements when it claims the connection; past the configured bound
    // the acceptor answers BUSY and closes instead of queueing.
    let pending = Arc::new(AtomicUsize::new(0));
    let mut threads: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(inner);
            let pending = Arc::clone(&pending);
            std::thread::spawn(move || worker_loop(&rx, &inner, &pending))
        })
        .collect();

    // Non-blocking accept with a poll tick: the acceptor re-checks the
    // shutdown flag every interval, so shutdown never needs to wake a
    // blocked accept (a self-connect trick would hang on wildcard or
    // externally-unreachable bind addresses), and persistent accept errors
    // (EMFILE under fd exhaustion) back off — and log once — instead of
    // spinning; see `classify_accept_error`.
    let acceptor = {
        let inner = Arc::clone(inner);
        let poll_interval = config.poll_interval;
        let max_pending = config.max_pending_conns;
        std::thread::spawn(move || {
            acceptor_loop(&listener, &inner, poll_interval, |stream| {
                // Whether accepted sockets inherit non-blocking mode is
                // platform-dependent; threaded connections must be blocking
                // (they use read timeouts).
                if stream.set_nonblocking(false).is_err() {
                    return true; // drop this socket, keep accepting
                }
                if max_pending > 0 && pending.load(Ordering::Acquire) >= max_pending {
                    reject_busy(stream, &inner);
                    return true;
                }
                pending.fetch_add(1, Ordering::AcqRel);
                if tx.send(stream).is_err() {
                    pending.fetch_sub(1, Ordering::AcqRel);
                    return false;
                }
                true
            });
        })
    };
    threads.push(acceptor);
    Ok(threads)
}

/// Handle to a running server: address introspection and graceful shutdown.
/// Dropping the handle also shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    /// Async backend only: one wake pipe per reactor shard, so shutdown
    /// interrupts `epoll_wait` instead of waiting out a poll tick.
    #[cfg(target_os = "linux")]
    wakers: Vec<std::os::unix::net::UnixStream>,
}

impl ServerHandle {
    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests served so far, across all connections.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let every open connection finish
    /// the requests it has buffered, and join all threads. Bounded by the
    /// configured poll interval plus in-flight request time.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.threads.is_empty() {
            return; // already shut down (shutdown() ran; this is its Drop)
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // The acceptor notices the flag within one poll tick and exits,
        // dropping the worker channel; idle threaded connections notice on
        // their read-timeout tick; reactors are woken explicitly.
        #[cfg(target_os = "linux")]
        for waker in &self.wakers {
            crate::reactor::wake(waker);
        }
        for thread in self.threads.drain(..) {
            drop(thread.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, inner: &Inner, pending: &AtomicUsize) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let stream = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(stream) => stream,
            Err(_) => break, // acceptor gone: shutdown
        };
        // Claimed: the connection no longer counts against admission.
        pending.fetch_sub(1, Ordering::AcqRel);
        // A connection failing (peer reset, protocol abuse) must not take
        // the worker with it.
        drop(handle_connection(stream, inner));
    }
}

/// Answers an over-admission connection with a typed `BUSY` frame (so the
/// client backs off for the hinted interval instead of interpreting the
/// close as a server fault) and drops it. Best-effort with a short write
/// timeout: the acceptor must never block behind a rejected peer.
fn reject_busy(stream: TcpStream, inner: &Inner) {
    inner.metrics.busy_rejections.inc();
    let retry_after_ms = u32::try_from(inner.busy_retry_after.as_millis()).unwrap_or(u32::MAX);
    let mut frame = Vec::with_capacity(16);
    let busy = Response::Busy { retry_after_ms };
    if busy.encode(&mut frame).is_ok()
        && stream.set_write_timeout(Some(Duration::from_millis(50))).is_ok()
    {
        let mut stream = stream;
        drop(stream.write_all(&frame));
    }
}

/// Serves one connection until EOF, a protocol violation, or shutdown. The
/// receive accumulator, response buffer and read chunk are checked out of
/// the shared pool and recycled afterwards, so connection churn does not
/// translate into allocator churn.
fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    inner.metrics.connections_opened.inc();
    let conn_id = inner.next_conn_id();
    inner.recorder.record(TraceEvent::ConnOpened { conn_id });
    let mut acc = inner.buffers.checkout();
    let mut out = inner.buffers.checkout();
    let mut chunk = inner.buffers.checkout();
    chunk.resize(READ_CHUNK, 0);
    let result = serve_blocking(stream, inner, conn_id, &mut acc, &mut out, &mut chunk);
    inner.buffers.checkin(acc);
    inner.buffers.checkin(out);
    inner.buffers.checkin(chunk);
    inner.recorder.record(TraceEvent::ConnClosed { conn_id });
    inner.metrics.connections_closed.inc();
    result
}

fn serve_blocking(
    stream: TcpStream,
    inner: &Inner,
    conn_id: u64,
    acc: &mut Vec<u8>,
    out: &mut Vec<u8>,
    chunk: &mut [u8],
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(inner.poll_interval))?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);

    loop {
        fault::check_io(FaultPoint::SocketRead)?;
        match reader.read(chunk) {
            Ok(0) => break,
            Ok(n) => {
                inner.metrics.bytes_read.add(n as u64);
                acc.extend_from_slice(&chunk[..n]);
                let keep_open = drain_frames(acc, out, inner, conn_id);
                if !out.is_empty() {
                    // An injected short write flushes a truncated response
                    // and drops the connection mid-frame — the client-side
                    // resilience path this exercises must treat it as a
                    // connection error, never a silently-short answer.
                    let n = fault::check_write(FaultPoint::SocketWrite, out.len())?;
                    if n < out.len() {
                        writer.write_all(&out[..n])?;
                        writer.flush()?;
                        return Err(fault::injected_error(FaultPoint::SocketWrite));
                    }
                    writer.write_all(out)?;
                    writer.flush()?;
                    inner.metrics.bytes_written.add(out.len() as u64);
                    out.clear();
                }
                if !keep_open {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if inner.is_shutdown() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

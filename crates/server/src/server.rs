//! The threaded TCP server in front of a [`BloomStore`].
//!
//! Architecture: one acceptor thread hands connections to a fixed pool of
//! worker threads over an mpsc channel; each worker serves one connection at
//! a time. A connection is a pipelined request loop — every socket read
//! drains *all* complete frames from the receive buffer, executes them
//! against the shared store (batch commands visit each shard lock once), and
//! flushes the buffered responses in one write. Reads tick on a short
//! timeout so every connection observes the shutdown flag promptly;
//! [`ServerHandle::shutdown`] is therefore bounded, not best-effort.
//!
//! Response writes are blocking: a peer that pipelines without ever
//! receiving can stall its own connection (and the worker serving it) once
//! the un-received responses overflow the socket buffers. That is the
//! peer's contract to keep — see the burst-bound note in [`crate::client`]
//! — and it wedges only that worker, never the acceptor or other
//! connections' workers.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use evilbloom_store::BloomStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::wire::{self, Command, Response, WireStats, DEFAULT_MAX_FRAME_BYTES};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads; each serves one connection at a time.
    pub workers: usize,
    /// Per-frame payload cap (a hostile length prefix is rejected, and the
    /// connection closed, before any allocation).
    pub max_frame_bytes: u32,
    /// Seed of the RNG that draws fresh key material for `ROTATE` commands
    /// on hardened stores.
    pub rotation_seed: u64,
    /// Tick at which the acceptor's non-blocking accept loop and idle
    /// connections' read timeouts re-check the shutdown flag — the upper
    /// bound on how long [`ServerHandle::shutdown`] waits for an idle
    /// server.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            rotation_seed: 0x5EED_0F0D_D5EE_D545,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Shared state of a running server.
struct Inner {
    store: Arc<BloomStore>,
    shutdown: AtomicBool,
    rotation_rng: Mutex<StdRng>,
    requests_served: AtomicU64,
    max_frame_bytes: u32,
    poll_interval: Duration,
}

/// The TCP serving layer: binds a listener and spawns the acceptor + worker
/// threads. See [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// serving `store`. Returns a handle owning the background threads.
    pub fn spawn(
        store: Arc<BloomStore>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            store,
            shutdown: AtomicBool::new(false),
            rotation_rng: Mutex::new(StdRng::seed_from_u64(config.rotation_seed)),
            requests_served: AtomicU64::new(0),
            max_frame_bytes: config.max_frame_bytes,
            poll_interval: config.poll_interval,
        });

        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&rx, &inner))
            })
            .collect();

        // Non-blocking accept with a poll tick: the acceptor re-checks the
        // shutdown flag every interval, so shutdown never needs to wake a
        // blocked accept (a self-connect trick would hang on wildcard or
        // externally-unreachable bind addresses), and persistent accept
        // errors (EMFILE under fd exhaustion) back off instead of spinning.
        listener.set_nonblocking(true)?;
        let acceptor = {
            let inner = Arc::clone(&inner);
            let poll_interval = config.poll_interval;
            std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Whether accepted sockets inherit non-blocking
                            // mode is platform-dependent; connections must
                            // be blocking (they use read timeouts).
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(poll_interval);
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => std::thread::sleep(poll_interval),
                    }
                }
            })
        };

        Ok(ServerHandle { local_addr, inner, acceptor: Some(acceptor), workers })
    }
}

/// Handle to a running server: address introspection and graceful shutdown.
/// Dropping the handle also shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests served so far, across all connections.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let every open connection finish
    /// the requests it has buffered, and join all threads. Bounded by the
    /// configured poll interval plus in-flight request time.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() {
            return; // already shut down (shutdown() ran; this is its Drop)
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // The acceptor notices the flag within one poll tick and exits,
        // dropping the worker channel; idle connections notice on their
        // read-timeout tick.
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, inner: &Inner) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let stream = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(stream) => stream,
            Err(_) => break, // acceptor gone: shutdown
        };
        // A connection failing (peer reset, protocol abuse) must not take
        // the worker with it.
        drop(handle_connection(stream, inner));
    }
}

/// Serves one connection until EOF, a protocol violation, or shutdown.
fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(inner.poll_interval))?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut acc: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];

    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                acc.extend_from_slice(&chunk[..n]);
                let keep_open = drain_frames(&mut acc, &mut out, inner);
                if !out.is_empty() {
                    writer.write_all(&out)?;
                    writer.flush()?;
                    out.clear();
                }
                if !keep_open {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Decodes and executes every complete frame in `acc`, appending response
/// frames to `out`. Returns `false` when a protocol violation means the
/// connection must close (the stream can no longer be trusted to be in
/// sync); a final `ERROR` response is still emitted so the client learns
/// why.
fn drain_frames(acc: &mut Vec<u8>, out: &mut Vec<u8>, inner: &Inner) -> bool {
    let mut consumed = 0;
    let mut keep_open = true;
    loop {
        match wire::frame_bounds(acc, consumed, inner.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some((start, end))) => {
                consumed = end;
                match Command::decode(&acc[start..end]) {
                    Ok(command) => {
                        execute(&command, inner).encode(out);
                        inner.requests_served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(err) => {
                        Response::Error(format!("protocol error: {err}")).encode(out);
                        keep_open = false;
                        break;
                    }
                }
            }
            Err(err) => {
                Response::Error(format!("protocol error: {err}")).encode(out);
                keep_open = false;
                break;
            }
        }
    }
    acc.drain(..consumed);
    keep_open
}

/// Executes one decoded command against the store. Batch commands pass the
/// borrowed item slices straight through to the store's batch APIs, which
/// visit each shard lock exactly once per frame.
fn execute(command: &Command<'_>, inner: &Inner) -> Response {
    let store = &inner.store;
    match command {
        Command::Ping => Response::Pong,
        Command::Insert(item) => Response::Inserted { fresh_bits: store.insert(item) },
        Command::Query(item) => Response::Found(store.contains(item)),
        Command::InsertBatch(items) => {
            let outcome = store.insert_batch(items);
            Response::BatchInserted { items: items.len() as u32, fresh_bits: outcome.fresh_bits }
        }
        Command::QueryBatch(items) => Response::BatchFound(store.query_batch(items)),
        Command::Stats => {
            Response::Stats(WireStats::from_stats(&store.stats(), store.is_hardened()))
        }
        Command::RotateBegin { shard } => match checked_shard(store, *shard) {
            Err(error) => error,
            Ok(shard) => {
                let mut rng = inner.rotation_rng.lock().expect("rotation rng poisoned");
                Response::Rotated { generation: store.begin_rotation(shard, &mut *rng) }
            }
        },
        Command::RotateComplete { shard } => match checked_shard(store, *shard) {
            Err(error) => error,
            Ok(shard) => Response::RotationCompleted(store.complete_rotation(shard)),
        },
    }
}

fn checked_shard(store: &BloomStore, shard: u32) -> Result<usize, Response> {
    let index = shard as usize;
    if index >= store.shard_count() {
        return Err(Response::Error(format!(
            "shard {index} out of range (store has {} shards)",
            store.shard_count()
        )));
    }
    Ok(index)
}

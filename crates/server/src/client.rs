//! The matching TCP client: typed request/response helpers over the shared
//! wire codec, with explicit pipelining.
//!
//! The convenience methods ([`Client::insert`], [`Client::query_batch`], …)
//! are one round trip each. For throughput, pipeline: [`Client::send`] a
//! burst of commands without waiting, then [`Client::recv`] the responses
//! in order — the first `recv` flushes the write buffer, so a burst of
//! frames crosses the network in one write and the server answers them all
//! from one read.
//!
//! **Bound your bursts.** The server writes responses with blocking I/O, so
//! a client that keeps sending while never receiving can wedge both sides
//! once the un-received responses overflow the socket buffers (the server
//! blocks writing responses, the client blocks writing requests, nobody
//! reads). Keep the responses outstanding per burst comfortably under the
//! socket-buffer scale — tens of kilobytes, i.e. thousands of single-op
//! commands or dozens of batch frames — and prefer `MINSERT`/`MQUERY`
//! batch frames over long runs of single-op frames: one batch frame earns
//! one small response.

use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    self, Command, Response, WireError, WireSnapshot, WireStats, DEFAULT_MAX_FRAME_BYTES,
};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response frame.
    Wire(WireError),
    /// The server answered with an `ERROR` response.
    Remote(String),
    /// The server answered with an `UNSUPPORTED` response: the served
    /// filter family cannot honour the request (e.g. `DELETE` against a
    /// plain Bloom backend). The connection remains usable.
    Unsupported(String),
    /// The server answered with the wrong response kind for the request.
    Unexpected {
        /// Response the request called for.
        expected: &'static str,
        /// Response that actually arrived.
        got: &'static str,
    },
    /// The server closed the connection while a response was outstanding.
    Disconnected,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Unsupported(message) => {
                write!(f, "unsupported by the served backend: {message}")
            }
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Outcome of a remote batch insert (the wire twin of
/// [`evilbloom_store::BatchOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteBatchOutcome {
    /// Items the server inserted.
    pub items: u32,
    /// Bits the batch flipped 0 → 1 across all shards.
    pub fresh_bits: u64,
}

/// A connection to an evilbloom server.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
    scratch: Vec<u8>,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so single-op latency is not at the
    /// mercy of Nagle's algorithm).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            frame: Vec::new(),
            scratch: Vec::new(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sets the frame cap this client enforces on both directions (default
    /// [`DEFAULT_MAX_FRAME_BYTES`]); match it to the server's
    /// `ServerConfig::max_frame_bytes` when that was changed.
    pub fn set_max_frame_bytes(&mut self, max_frame_bytes: u32) {
        self.max_frame_bytes = max_frame_bytes;
    }

    /// Queues one command into the write buffer without flushing — the
    /// pipelining primitive. Pair every `send` with one [`Client::recv`].
    ///
    /// A command that encodes above the frame cap is rejected here, before
    /// any bytes leave the client — the server would answer it with an
    /// `ERROR` and close the connection, a far more confusing failure.
    pub fn send(&mut self, command: &Command<'_>) -> io::Result<()> {
        self.scratch.clear();
        command
            .encode(&mut self.scratch)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let payload_len = (self.scratch.len() - 4) as u64;
        if payload_len > u64::from(self.max_frame_bytes) {
            // Report the *true* payload length: a frame billions of bytes
            // over the cap used to be clamped to `u32::MAX` in this error,
            // hiding how oversized the request really was.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                WireError::Oversized { len: payload_len, max: self.max_frame_bytes }.to_string(),
            ));
        }
        self.writer.write_all(&self.scratch)
    }

    /// Flushes queued commands to the socket. [`Client::recv`] does this
    /// automatically before blocking.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receives the next response in order. Flushes first, so a
    /// send-burst-then-recv-loop cannot deadlock on an unflushed request.
    /// `ERROR` responses surface as [`ClientError::Remote`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.flush()?;
        if !wire::read_frame(&mut self.reader, &mut self.frame, self.max_frame_bytes)? {
            return Err(ClientError::Disconnected);
        }
        match Response::decode(&self.frame)? {
            Response::Error(message) => Err(ClientError::Remote(message)),
            Response::Unsupported(message) => Err(ClientError::Unsupported(message)),
            response => Ok(response),
        }
    }

    fn call(&mut self, command: &Command<'_>) -> Result<Response, ClientError> {
        self.send(command)?;
        self.recv()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Command::Ping)? {
            Response::Pong => Ok(()),
            other => unexpected("PONG", &other),
        }
    }

    /// Inserts one item; returns the number of fresh bits it set.
    pub fn insert(&mut self, item: &[u8]) -> Result<u32, ClientError> {
        match self.call(&Command::Insert(item))? {
            Response::Inserted { fresh_bits } => Ok(fresh_bits),
            other => unexpected("INSERTED", &other),
        }
    }

    /// Membership query (positives may be false positives).
    pub fn query(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Command::Query(item))? {
            Response::Found(found) => Ok(found),
            other => unexpected("FOUND", &other),
        }
    }

    /// Batch insert: one frame, one shard-lock visit per shard.
    pub fn insert_batch<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
    ) -> Result<RemoteBatchOutcome, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::InsertBatch(borrowed))? {
            Response::BatchInserted { items, fresh_bits } => {
                Ok(RemoteBatchOutcome { items, fresh_bits })
            }
            other => unexpected("MINSERTED", &other),
        }
    }

    /// Batch query; answers are in input order.
    pub fn query_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::QueryBatch(borrowed))? {
            Response::BatchFound(answers) if answers.len() == items.len() => Ok(answers),
            Response::BatchFound(_) => {
                Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
            }
            other => unexpected("MFOUND", &other),
        }
    }

    /// Deletes one item (deletable filter families); returns whether it was
    /// (probably) present. [`ClientError::Unsupported`] on families without
    /// deletion — the connection stays usable.
    pub fn delete(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Command::Delete(item))? {
            Response::Deleted { was_present } => Ok(was_present),
            other => unexpected("DELETED", &other),
        }
    }

    /// Batch delete; answers are in input order.
    pub fn delete_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::DeleteBatch(borrowed))? {
            Response::BatchDeleted(answers) if answers.len() == items.len() => Ok(answers),
            Response::BatchDeleted(_) => {
                Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
            }
            other => unexpected("MDELETED", &other),
        }
    }

    /// Health snapshot, including per-shard pollution alarms.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Command::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => unexpected("STATS", &other),
        }
    }

    /// Starts a key rotation on one shard. Returns the new generation id,
    /// or `None` if a rotation was already draining there.
    pub fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError> {
        match self.call(&Command::RotateBegin { shard })? {
            Response::Rotated { generation } => Ok(generation),
            other => unexpected("ROTATED", &other),
        }
    }

    /// Completes a shard's rotation (call after replaying the item set).
    pub fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError> {
        match self.call(&Command::RotateComplete { shard })? {
            Response::RotationCompleted(completed) => Ok(completed),
            other => unexpected("ROTATION_COMPLETED", &other),
        }
    }

    /// Asks the server to write a durable snapshot (rotating its WAL so the
    /// snapshot plus later log segments reconstruct the exact bit state).
    /// Fails with [`ClientError::Remote`] when the server has no
    /// persistence enabled.
    pub fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        match self.call(&Command::Snapshot)? {
            Response::Snapshotted(info) => Ok(info),
            other => unexpected("SNAPSHOTTED", &other),
        }
    }

    /// Scrapes the server's runtime telemetry as a text exposition
    /// (counters, gauges, latency histograms with quantiles — including the
    /// `evilbloom_store_bits_per_insert_recent` pollution-drift gauge).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Command::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => unexpected("METRICS", &other),
        }
    }

    /// Fetches the server's forensic trace: recent flight-recorder events,
    /// the per-connection suspect ranking (fresh-bits-per-insert EWMAs)
    /// and the pollution-drift timeline. Render it for humans with
    /// [`crate::WireTrace::render`].
    pub fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        match self.call(&Command::Trace)? {
            Response::Trace(trace) => Ok(trace),
            other => unexpected("TRACE", &other),
        }
    }
}

fn unexpected<T>(expected: &'static str, got: &Response) -> Result<T, ClientError> {
    Err(ClientError::Unexpected { expected, got: got.name() })
}

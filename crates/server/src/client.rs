//! The matching TCP client: typed request/response helpers over the shared
//! wire codec, with explicit pipelining.
//!
//! The convenience methods ([`Client::insert`], [`Client::query_batch`], …)
//! are one round trip each. For throughput, pipeline: [`Client::send`] a
//! burst of commands without waiting, then [`Client::recv`] the responses
//! in order — the first `recv` flushes the write buffer, so a burst of
//! frames crosses the network in one write and the server answers them all
//! from one read.
//!
//! **Bound your bursts.** The server writes responses with blocking I/O, so
//! a client that keeps sending while never receiving can wedge both sides
//! once the un-received responses overflow the socket buffers (the server
//! blocks writing responses, the client blocks writing requests, nobody
//! reads). Keep the responses outstanding per burst comfortably under the
//! socket-buffer scale — tens of kilobytes, i.e. thousands of single-op
//! commands or dozens of batch frames — and prefer `MINSERT`/`MQUERY`
//! batch frames over long runs of single-op frames: one batch frame earns
//! one small response.

use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::retry::RetryPolicy;
use crate::wire::{
    self, Command, Response, WireError, WireSnapshot, WireStats, DEFAULT_MAX_FRAME_BYTES,
};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response frame.
    Wire(WireError),
    /// The server answered with an `ERROR` response.
    Remote(String),
    /// The server answered with an `UNSUPPORTED` response: the served
    /// filter family cannot honour the request (e.g. `DELETE` against a
    /// plain Bloom backend). The connection remains usable.
    Unsupported(String),
    /// The server answered with the wrong response kind for the request.
    Unexpected {
        /// Response the request called for.
        expected: &'static str,
        /// Response that actually arrived.
        got: &'static str,
    },
    /// The server closed the connection while a response was outstanding.
    Disconnected,
    /// The server refused admission with a typed `BUSY` response; retry
    /// after the hinted delay. Safe to retry even for writes — a `BUSY`
    /// request was never executed.
    Busy {
        /// Server's hint for how long to back off before retrying.
        retry_after_ms: u32,
    },
    /// The server is in degraded read-only mode (its WAL broke) and
    /// refused a write with a typed `DEGRADED` response. Not retryable:
    /// the condition persists until an operator-triggered `SNAPSHOT`
    /// repairs the log. The connection remains usable for reads.
    Degraded(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Unsupported(message) => {
                write!(f, "unsupported by the served backend: {message}")
            }
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server is overloaded, retry after {retry_after_ms}ms")
            }
            ClientError::Degraded(reason) => {
                write!(f, "server is in degraded read-only mode: {reason}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Outcome of a remote batch insert (the wire twin of
/// [`evilbloom_store::BatchOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteBatchOutcome {
    /// Items the server inserted.
    pub items: u32,
    /// Bits the batch flipped 0 → 1 across all shards.
    pub fresh_bits: u64,
}

/// Deadlines, frame cap and retry budget for a client connection.
///
/// [`Client::connect`] uses OS defaults (no deadlines) for backwards
/// compatibility; [`Client::connect_with`] and the resilient layers
/// ([`ResilientClient`], [`crate::ClientPool`]) take a config.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (per resolved
    /// address). `None` blocks on the OS default, which against a
    /// blackholed address can be minutes.
    pub connect_timeout: Option<Duration>,
    /// Per-request deadline, applied as the socket read *and* write
    /// timeout: any single `send`/`recv` that stalls longer fails with
    /// a timeout [`ClientError::Io`].
    pub request_timeout: Option<Duration>,
    /// Frame cap enforced in both directions (see
    /// [`Client::set_max_frame_bytes`]).
    pub max_frame_bytes: u32,
    /// Retry budget and backoff schedule for [`ResilientClient`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

/// A connection to an evilbloom server.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
    scratch: Vec<u8>,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so single-op latency is not at the
    /// mercy of Nagle's algorithm). No deadlines: use
    /// [`Client::connect_with`] when the peer may be unreachable or slow.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream, None, DEFAULT_MAX_FRAME_BYTES)
    }

    /// Connects with deadlines: each resolved address is tried with
    /// `ClientConfig::connect_timeout` (so a blackholed address fails
    /// fast instead of hanging for the OS-default minutes), and the
    /// resulting socket carries `ClientConfig::request_timeout` as its
    /// read/write deadline.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            let attempt = match config.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(&addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    return Client::from_stream(
                        stream,
                        config.request_timeout,
                        config.max_frame_bytes,
                    );
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to no candidates")
        }))
    }

    fn from_stream(
        stream: TcpStream,
        request_timeout: Option<Duration>,
        max_frame_bytes: u32,
    ) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(request_timeout)?;
        stream.set_write_timeout(request_timeout)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            frame: Vec::new(),
            scratch: Vec::new(),
            max_frame_bytes,
        })
    }

    /// Sets the frame cap this client enforces on both directions (default
    /// [`DEFAULT_MAX_FRAME_BYTES`]); match it to the server's
    /// `ServerConfig::max_frame_bytes` when that was changed.
    pub fn set_max_frame_bytes(&mut self, max_frame_bytes: u32) {
        self.max_frame_bytes = max_frame_bytes;
    }

    /// Queues one command into the write buffer without flushing — the
    /// pipelining primitive. Pair every `send` with one [`Client::recv`].
    ///
    /// A command that encodes above the frame cap is rejected here, before
    /// any bytes leave the client — the server would answer it with an
    /// `ERROR` and close the connection, a far more confusing failure.
    pub fn send(&mut self, command: &Command<'_>) -> io::Result<()> {
        self.scratch.clear();
        command
            .encode(&mut self.scratch)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let payload_len = (self.scratch.len() - 4) as u64;
        if payload_len > u64::from(self.max_frame_bytes) {
            // Report the *true* payload length: a frame billions of bytes
            // over the cap used to be clamped to `u32::MAX` in this error,
            // hiding how oversized the request really was.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                WireError::Oversized { len: payload_len, max: self.max_frame_bytes }.to_string(),
            ));
        }
        self.writer.write_all(&self.scratch)
    }

    /// Flushes queued commands to the socket. [`Client::recv`] does this
    /// automatically before blocking.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receives the next response in order. Flushes first, so a
    /// send-burst-then-recv-loop cannot deadlock on an unflushed request.
    /// `ERROR` responses surface as [`ClientError::Remote`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.flush()?;
        if !wire::read_frame(&mut self.reader, &mut self.frame, self.max_frame_bytes)? {
            return Err(ClientError::Disconnected);
        }
        match Response::decode(&self.frame)? {
            Response::Error(message) => Err(ClientError::Remote(message)),
            Response::Unsupported(message) => Err(ClientError::Unsupported(message)),
            Response::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            Response::Degraded(reason) => Err(ClientError::Degraded(reason)),
            response => Ok(response),
        }
    }

    fn call(&mut self, command: &Command<'_>) -> Result<Response, ClientError> {
        self.send(command)?;
        self.recv()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Command::Ping)? {
            Response::Pong => Ok(()),
            other => unexpected("PONG", &other),
        }
    }

    /// Inserts one item; returns the number of fresh bits it set.
    pub fn insert(&mut self, item: &[u8]) -> Result<u32, ClientError> {
        match self.call(&Command::Insert(item))? {
            Response::Inserted { fresh_bits } => Ok(fresh_bits),
            other => unexpected("INSERTED", &other),
        }
    }

    /// Membership query (positives may be false positives).
    pub fn query(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Command::Query(item))? {
            Response::Found(found) => Ok(found),
            other => unexpected("FOUND", &other),
        }
    }

    /// Batch insert: one frame, one shard-lock visit per shard.
    pub fn insert_batch<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
    ) -> Result<RemoteBatchOutcome, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::InsertBatch(borrowed))? {
            Response::BatchInserted { items, fresh_bits } => {
                Ok(RemoteBatchOutcome { items, fresh_bits })
            }
            other => unexpected("MINSERTED", &other),
        }
    }

    /// Batch query; answers are in input order.
    pub fn query_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::QueryBatch(borrowed))? {
            Response::BatchFound(answers) if answers.len() == items.len() => Ok(answers),
            Response::BatchFound(_) => {
                Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
            }
            other => unexpected("MFOUND", &other),
        }
    }

    /// Deletes one item (deletable filter families); returns whether it was
    /// (probably) present. [`ClientError::Unsupported`] on families without
    /// deletion — the connection stays usable.
    pub fn delete(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Command::Delete(item))? {
            Response::Deleted { was_present } => Ok(was_present),
            other => unexpected("DELETED", &other),
        }
    }

    /// Batch delete; answers are in input order.
    pub fn delete_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        let borrowed: Vec<&[u8]> = items.iter().map(AsRef::as_ref).collect();
        match self.call(&Command::DeleteBatch(borrowed))? {
            Response::BatchDeleted(answers) if answers.len() == items.len() => Ok(answers),
            Response::BatchDeleted(_) => {
                Err(ClientError::Wire(WireError::Malformed("answer count mismatch")))
            }
            other => unexpected("MDELETED", &other),
        }
    }

    /// Health snapshot, including per-shard pollution alarms.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Command::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => unexpected("STATS", &other),
        }
    }

    /// Starts a key rotation on one shard. Returns the new generation id,
    /// or `None` if a rotation was already draining there.
    pub fn rotate_begin(&mut self, shard: u32) -> Result<Option<u64>, ClientError> {
        match self.call(&Command::RotateBegin { shard })? {
            Response::Rotated { generation } => Ok(generation),
            other => unexpected("ROTATED", &other),
        }
    }

    /// Completes a shard's rotation (call after replaying the item set).
    pub fn rotate_complete(&mut self, shard: u32) -> Result<bool, ClientError> {
        match self.call(&Command::RotateComplete { shard })? {
            Response::RotationCompleted(completed) => Ok(completed),
            other => unexpected("ROTATION_COMPLETED", &other),
        }
    }

    /// Asks the server to write a durable snapshot (rotating its WAL so the
    /// snapshot plus later log segments reconstruct the exact bit state).
    /// Fails with [`ClientError::Remote`] when the server has no
    /// persistence enabled.
    pub fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        match self.call(&Command::Snapshot)? {
            Response::Snapshotted(info) => Ok(info),
            other => unexpected("SNAPSHOTTED", &other),
        }
    }

    /// Scrapes the server's runtime telemetry as a text exposition
    /// (counters, gauges, latency histograms with quantiles — including the
    /// `evilbloom_store_bits_per_insert_recent` pollution-drift gauge).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Command::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => unexpected("METRICS", &other),
        }
    }

    /// Fetches the server's forensic trace: recent flight-recorder events,
    /// the per-connection suspect ranking (fresh-bits-per-insert EWMAs)
    /// and the pollution-drift timeline. Render it for humans with
    /// [`crate::WireTrace::render`].
    pub fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        match self.call(&Command::Trace)? {
            Response::Trace(trace) => Ok(trace),
            other => unexpected("TRACE", &other),
        }
    }
}

fn unexpected<T>(expected: &'static str, got: &Response) -> Result<T, ClientError> {
    Err(ClientError::Unexpected { expected, got: got.name() })
}

/// What the retry loop should do with a failed attempt.
struct Verdict {
    /// Whether the error class is transient (the attempt may be replayed).
    retryable: bool,
    /// Whether the connection is no longer trustworthy and must be
    /// re-dialled before the next attempt.
    reconnect: bool,
    /// Server-provided floor for the next delay (`BUSY` retry-after).
    hint: Option<Duration>,
}

fn classify(err: &ClientError, idempotent: bool, retry_writes: bool) -> Verdict {
    match err {
        // BUSY is always safe to retry — an admission-rejected request was
        // never executed — but the threaded backend writes it at accept
        // time and then drops the socket, so re-dial to be safe.
        ClientError::Busy { retry_after_ms } => Verdict {
            retryable: true,
            reconnect: true,
            hint: Some(Duration::from_millis(u64::from(*retry_after_ms))),
        },
        // Connection-level failures: the request may or may not have been
        // applied, so only idempotent requests (or writes explicitly opted
        // in) are replayed.
        ClientError::Io(_) | ClientError::Disconnected => {
            Verdict { retryable: idempotent || retry_writes, reconnect: true, hint: None }
        }
        // The stream decoded garbage or answered out of order: re-dialling
        // could help a retryable request, but framing corruption usually
        // means a bug, so surface it.
        ClientError::Wire(_) | ClientError::Unexpected { .. } => {
            Verdict { retryable: false, reconnect: true, hint: None }
        }
        // Typed refusals on a healthy connection: retrying cannot change
        // the answer (degraded mode persists until an operator repairs the
        // WAL; ERROR closes the connection server-side).
        ClientError::Degraded(_) | ClientError::Unsupported(_) => {
            Verdict { retryable: false, reconnect: false, hint: None }
        }
        ClientError::Remote(_) => Verdict { retryable: false, reconnect: true, hint: None },
    }
}

/// A self-healing client: owns the server address and a [`ClientConfig`],
/// re-dials dropped connections, and retries failed requests on the
/// seeded decorrelated-jitter schedule of [`RetryPolicy`].
///
/// Retrying is idempotency-aware: reads (`QUERY`/`MQUERY`/`STATS`/
/// `METRICS`/`TRACE`/`PING`) retry freely, `BUSY` rejections retry for
/// every request kind (a rejected request was never executed), but
/// mutations (`INSERT`/`MINSERT`/`DELETE`/`MDELETE`) are replayed after a
/// connection-level failure only when the policy opted in via
/// [`RetryPolicy::retrying_writes`] — a write whose ack was lost may have
/// been applied, and replaying it double-counts on counting filters.
pub struct ResilientClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Client>,
    reconnects: u64,
    retries: u64,
}

impl ResilientClient {
    /// Resolves `addr` once and dials eagerly with the config's connect
    /// deadline.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<ResilientClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to no candidates",
            ));
        }
        let conn = Client::connect_with(addrs.as_slice(), &config)?;
        Ok(ResilientClient { addrs, config, conn: Some(conn), reconnects: 0, retries: 0 })
    }

    /// Connections re-dialled after a failure (the initial dial is not
    /// counted).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Attempts replayed after a transient failure.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn ensure(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let conn = Client::connect_with(self.addrs.as_slice(), &self.config)?;
            self.conn = Some(conn);
            self.reconnects += 1;
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }

    fn run<T>(
        &mut self,
        idempotent: bool,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut backoff = self.config.retry.backoff();
        loop {
            let attempt = self.ensure().and_then(&mut op);
            let err = match attempt {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            let verdict = classify(&err, idempotent, self.config.retry.retry_writes);
            if verdict.reconnect {
                self.conn = None;
            }
            if !verdict.retryable {
                return Err(err);
            }
            match backoff.next_delay() {
                Some(delay) => {
                    self.retries += 1;
                    std::thread::sleep(verdict.hint.map_or(delay, |hint| delay.max(hint)));
                }
                None => return Err(err),
            }
        }
    }

    /// Liveness probe (retried freely).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.run(true, |c| c.ping())
    }

    /// Membership query (retried freely).
    pub fn query(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        self.run(true, |c| c.query(item))
    }

    /// Batch query (retried freely).
    pub fn query_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.run(true, |c| c.query_batch(items))
    }

    /// Health snapshot (retried freely).
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        self.run(true, |c| c.stats())
    }

    /// Telemetry scrape (retried freely).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.run(true, |c| c.metrics())
    }

    /// Forensic trace fetch (retried freely).
    pub fn trace(&mut self) -> Result<crate::WireTrace, ClientError> {
        self.run(true, |c| c.trace())
    }

    /// Durable snapshot request. Safe to repeat (a second snapshot of the
    /// same state is a no-op for correctness), so retried freely.
    pub fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        self.run(true, |c| c.snapshot())
    }

    /// Single insert — replayed after connection failures only with
    /// [`RetryPolicy::retrying_writes`]; `BUSY` rejections always retry.
    pub fn insert(&mut self, item: &[u8]) -> Result<u32, ClientError> {
        self.run(false, |c| c.insert(item))
    }

    /// Batch insert — same idempotency rules as [`ResilientClient::insert`].
    pub fn insert_batch<I: AsRef<[u8]>>(
        &mut self,
        items: &[I],
    ) -> Result<RemoteBatchOutcome, ClientError> {
        self.run(false, |c| c.insert_batch(items))
    }

    /// Single delete — same idempotency rules as [`ResilientClient::insert`].
    pub fn delete(&mut self, item: &[u8]) -> Result<bool, ClientError> {
        self.run(false, |c| c.delete(item))
    }

    /// Batch delete — same idempotency rules as [`ResilientClient::insert`].
    pub fn delete_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> Result<Vec<bool>, ClientError> {
        self.run(false, |c| c.delete_batch(items))
    }
}

//! Seeded retry/backoff schedule for the resilient client.
//!
//! The schedule is *decorrelated jitter* (the AWS architecture-blog
//! variant): each delay is drawn uniformly from `[base, prev * 3]` and
//! clamped to `[base, cap]`, so consecutive retries spread out without
//! the thundering-herd synchronisation of plain exponential backoff.
//! The RNG is seeded explicitly, which makes the whole schedule a pure
//! function of `(policy, seed)` — chaos runs and property tests replay
//! it exactly.
//!
//! [`RetryPolicy`] is the declarative half (how many retries, the delay
//! window, whether non-idempotent writes may be replayed);
//! [`Backoff`] is the stateful iterator the client drives.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Declarative retry budget for [`crate::client::ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *retries* after the first attempt. `0` disables
    /// retrying entirely (one attempt, errors surface immediately).
    pub max_retries: u32,
    /// Lower bound (and first value) of the backoff window.
    pub base: Duration,
    /// Upper clamp for any single delay.
    pub cap: Duration,
    /// Seed for the jitter RNG: the same `(policy, seed)` pair always
    /// produces the same delay schedule.
    pub seed: u64,
    /// Whether non-idempotent mutations (`MINSERT`/`MDELETE` and their
    /// single-item forms) may be replayed after a connection-level
    /// failure. Off by default: a write whose ack was lost may or may
    /// not have been applied, and replaying it double-counts on
    /// counting filters.
    pub retry_writes: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x5eed_b10b,
            retry_writes: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries; errors surface on the first failure.
    pub fn none() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// Returns the same policy with writes opted in to retrying.
    /// See [`RetryPolicy::retry_writes`] for why this is explicit.
    pub fn retrying_writes(mut self) -> Self {
        self.retry_writes = true;
        self
    }

    /// Starts a fresh backoff schedule for one logical request.
    pub fn backoff(&self) -> Backoff {
        Backoff {
            remaining: self.max_retries,
            base: self.base.max(Duration::from_nanos(1)),
            cap: self.cap.max(self.base),
            prev: self.base.max(Duration::from_nanos(1)),
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

/// Stateful decorrelated-jitter schedule produced by
/// [`RetryPolicy::backoff`]. Yields at most `max_retries` delays, each
/// within `[base, cap]`.
#[derive(Debug, Clone)]
pub struct Backoff {
    remaining: u32,
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: StdRng,
}

impl Backoff {
    /// Next delay to sleep before the following attempt, or `None` once
    /// the retry budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let base = duration_nanos(self.base);
        let cap = duration_nanos(self.cap);
        let upper = duration_nanos(self.prev).saturating_mul(3).clamp(base, cap);
        // The vendored rand shim only offers exclusive ranges.
        let picked =
            if upper <= base { base } else { self.rng.gen_range(base..upper.saturating_add(1)) };
        self.prev = Duration::from_nanos(picked);
        Some(self.prev)
    }

    /// Retries left in the budget.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 42,
            retry_writes: false,
        }
    }

    #[test]
    fn the_schedule_is_a_pure_function_of_policy_and_seed() {
        let mut a = policy().backoff();
        let mut b = policy().backoff();
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        assert_eq!(a.next_delay(), None);
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = policy().backoff();
        let mut b = RetryPolicy { seed: 43, ..policy() }.backoff();
        let delays_a: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let delays_b: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_ne!(delays_a, delays_b);
    }

    #[test]
    fn every_delay_stays_inside_the_base_cap_window() {
        for seed in 0..64 {
            let p = RetryPolicy { seed, ..policy() };
            let mut backoff = p.backoff();
            while let Some(delay) = backoff.next_delay() {
                assert!(delay >= p.base, "seed {seed}: {delay:?} below base");
                assert!(delay <= p.cap, "seed {seed}: {delay:?} above cap");
            }
        }
    }

    #[test]
    fn the_attempt_budget_is_bounded() {
        let mut backoff = policy().backoff();
        let mut yielded = 0;
        while backoff.next_delay().is_some() {
            yielded += 1;
            assert!(yielded <= 8, "backoff yielded more delays than max_retries");
        }
        assert_eq!(yielded, 8);
    }

    #[test]
    fn zero_retries_yields_nothing() {
        assert_eq!(RetryPolicy::none().backoff().next_delay(), None);
    }
}

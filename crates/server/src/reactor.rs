//! The Linux epoll reactor behind [`crate::Backend::Async`].
//!
//! Layout: one acceptor thread (the same resilient accept loop the threaded
//! backend uses) hands accepted sockets round-robin to N *reactor shards*.
//! Each shard owns an epoll instance and a set of non-blocking
//! [`crate::conn`] connection state machines; a readiness event drives the
//! state machine (read-accumulate → decode/execute all complete frames →
//! buffered write with `WouldBlock`-aware flush), and `EPOLLOUT` is armed
//! only while a flush came up short. Connection count is therefore bounded
//! by file descriptors — C10k-scale — not by threads, while CPU parallelism
//! comes from the shard count.
//!
//! The build environment is offline (no `libc`/`mio`), so the four syscalls
//! epoll needs are declared directly in [`sys`] — the only `unsafe` in the
//! crate, confined to that module behind a safe [`Epoll`] wrapper. The
//! acceptor→shard handoff uses an mpsc channel per shard plus a
//! `UnixStream` wake pipe registered in the shard's epoll set (writing one
//! byte is the cross-thread "you have work" signal; shutdown uses the same
//! pipes so it never waits out a full poll tick).

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evilbloom_metrics::{log_error, log_warn};
use evilbloom_trace::TraceEvent;

use crate::backend::acceptor_loop;
use crate::conn::{Connection, Status, READ_CHUNK};
use crate::server::Inner;

/// Raw syscall surface: exactly what an epoll reactor needs, nothing more.
/// Kept `unsafe`-in-one-place behind the safe [`Epoll`] wrapper.
#[allow(unsafe_code)]
mod sys {
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    /// The kernel's `struct epoll_event`. x86-64 is the one ABI where the
    /// kernel declares it packed (no padding between `events` and `data`).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn create1(flags: i32) -> i32 {
        // SAFETY: no pointers; returns a new fd or -1 with errno set.
        unsafe { epoll_create1(flags) }
    }

    pub fn ctl(epfd: i32, op: i32, fd: i32, event: Option<&mut EpollEvent>) -> i32 {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (allowed for DEL) or a valid, live
        // `EpollEvent` the kernel only reads during the call.
        unsafe { epoll_ctl(epfd, op, fd, ptr) }
    }

    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> i32 {
        // SAFETY: the pointer/length pair describes exactly the caller's
        // buffer, which outlives the call; the kernel writes at most
        // `events.len()` entries.
        unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) }
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: called only from `Epoll::drop` on an fd this process owns.
        unsafe {
            close(fd);
        }
    }
}

/// Safe wrapper around one epoll instance.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = sys::create1(sys::EPOLL_CLOEXEC);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn add(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut event = sys::EpollEvent { events: interest, data: token };
        self.ctl(sys::EPOLL_CTL_ADD, fd, Some(&mut event))
    }

    fn modify(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut event = sys::EpollEvent { events: interest, data: token };
        self.ctl(sys::EPOLL_CTL_MOD, fd, Some(&mut event))
    }

    fn delete(&self, fd: i32) {
        // Best-effort: the fd is about to be closed, which deregisters it
        // anyway.
        drop(self.ctl(sys::EPOLL_CTL_DEL, fd, None));
    }

    fn ctl(&self, op: i32, fd: i32, event: Option<&mut sys::EpollEvent>) -> io::Result<()> {
        if sys::ctl(self.fd, op, fd, event) < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits for readiness events; `EINTR` surfaces as an empty batch.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout: Duration) -> io::Result<usize> {
        let timeout_ms = timeout.as_millis().clamp(1, i32::MAX as u128) as i32;
        let n = sys::wait(self.fd, events, timeout_ms);
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// Token the wake pipe is registered under (no valid fd reaches u64::MAX).
const WAKE_TOKEN: u64 = u64::MAX;
/// Readiness events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 1024;

/// One reactor shard: an epoll set, the wake pipe, the handoff channel and
/// the connections this shard owns.
struct Reactor {
    epoll: Epoll,
    wake_rx: UnixStream,
    incoming: Receiver<TcpStream>,
    inner: Arc<Inner>,
}

/// A connection plus the epoll interest currently registered for it, so
/// interest changes issue `EPOLL_CTL_MOD` only when something changed.
struct Registered {
    conn: Connection,
    interest: u32,
}

fn desired_interest(conn: &Connection) -> u32 {
    let mut interest = 0;
    if conn.wants_read() {
        interest |= sys::EPOLLIN;
    }
    if conn.wants_write() {
        interest |= sys::EPOLLOUT;
    }
    interest
}

impl Reactor {
    fn new(
        inner: Arc<Inner>,
        wake_rx: UnixStream,
        incoming: Receiver<TcpStream>,
    ) -> io::Result<Reactor> {
        wake_rx.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(raw_fd(&wake_rx), sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(Reactor { epoll, wake_rx, incoming, inner })
    }

    fn run(self) {
        let mut conns: HashMap<u64, Registered> = HashMap::new();
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        let mut scratch = vec![0u8; READ_CHUNK];
        let poll_interval = self.inner.poll_interval;

        loop {
            let ready = match self.epoll.wait(&mut events, poll_interval) {
                Ok(ready) => ready,
                Err(error) => {
                    // The epoll fd itself failing is fatal to this shard;
                    // say so — a silently missing shard would only show up
                    // as mysteriously refused connections much later.
                    if !self.inner.is_shutdown() {
                        log_error!("reactor shard failed ({error}); exiting");
                    }
                    break;
                }
            };
            self.inner.metrics.reactor_wakeups.inc();
            if self.inner.is_shutdown() {
                break;
            }
            for event in &events[..ready] {
                let (bits, token) = (event.events, event.data);
                if token == WAKE_TOKEN {
                    self.drain_wake_pipe();
                    self.register_incoming(&mut conns);
                    continue;
                }
                let Some(registered) = conns.get_mut(&token) else {
                    continue; // closed earlier in this batch
                };
                let status = if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                    Status::Closed
                } else {
                    let mut status = Status::Open;
                    if bits & sys::EPOLLOUT != 0 {
                        status = registered.conn.flush(&self.inner);
                    }
                    if status == Status::Open && bits & sys::EPOLLIN != 0 {
                        status = registered.conn.on_readable(&mut scratch, &self.inner);
                    }
                    status
                };
                match status {
                    Status::Closed => self.close(conns.remove(&token).expect("present"), token),
                    Status::Open => {
                        let interest = desired_interest(&registered.conn);
                        if interest != registered.interest
                            && self.epoll.modify(token as i32, interest, token).is_ok()
                        {
                            if interest & sys::EPOLLOUT != 0
                                && registered.interest & sys::EPOLLOUT == 0
                            {
                                self.inner.metrics.reactor_epollout_arms.inc();
                            }
                            registered.interest = interest;
                        }
                    }
                }
            }
            // A handoff can race the previous wake drain; sweep the channel
            // even on a timeout tick so no accepted socket waits forever.
            self.register_incoming(&mut conns);
            self.evict_slow_consumers(&mut conns);
        }
        // Shutdown: close every connection this shard owns.
        for (token, registered) in conns.drain() {
            self.close(registered, token);
        }
    }

    fn drain_wake_pipe(&self) {
        let mut sink = [0u8; 64];
        while let Ok(n) = io::Read::read(&mut (&self.wake_rx), &mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }

    fn register_incoming(&self, conns: &mut HashMap<u64, Registered>) {
        loop {
            let stream = match self.incoming.try_recv() {
                Ok(stream) => stream,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return,
            };
            // A socket we cannot configure or register is dropped (closed);
            // the peer sees a reset, the reactor stays healthy.
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let token = raw_fd(&stream) as u64;
            let conn_id = self.inner.next_conn_id();
            let conn = Connection::new(
                stream,
                conn_id,
                self.inner.buffers.checkout(),
                self.inner.buffers.checkout(),
            );
            let interest = desired_interest(&conn);
            if self.epoll.add(token as i32, interest, token).is_ok() {
                self.inner.metrics.connections_opened.inc();
                self.inner.recorder.record(TraceEvent::ConnOpened { conn_id });
                conns.insert(token, Registered { conn, interest });
            }
        }
    }

    /// Graceful degradation under overload: a peer that lets its pending
    /// responses sit at the high-water mark past the grace period is
    /// holding server buffers hostage — evict it so the memory serves
    /// peers that are still reading. Runs once per poll tick; the sweep is
    /// O(connections), bounded by the same fd budget that bounds them.
    fn evict_slow_consumers(&self, conns: &mut HashMap<u64, Registered>) {
        let grace = self.inner.slow_consumer_grace;
        if grace.is_zero() {
            return;
        }
        let now = Instant::now();
        let stalled: Vec<u64> = conns
            .iter()
            .filter(|(_, r)| r.conn.stalled_for(now).is_some_and(|d| d >= grace))
            .map(|(&token, _)| token)
            .collect();
        for token in stalled {
            let registered = conns.remove(&token).expect("present");
            log_warn!(
                "evicting slow consumer conn={} ({}ms past the write high-water mark)",
                registered.conn.conn_id(),
                grace.as_millis()
            );
            self.inner.metrics.slow_consumer_evictions.inc();
            self.close(registered, token);
        }
    }

    fn close(&self, registered: Registered, token: u64) {
        self.epoll.delete(token as i32);
        self.inner.recorder.record(TraceEvent::ConnClosed { conn_id: registered.conn.conn_id() });
        let (acc, out) = registered.conn.into_buffers();
        self.inner.buffers.checkin(acc);
        self.inner.buffers.checkin(out);
        self.inner.metrics.connections_closed.inc();
    }
}

fn raw_fd<F: std::os::unix::io::AsRawFd>(f: &F) -> i32 {
    f.as_raw_fd()
}

/// Spawns the async backend: `shards` reactor threads plus the acceptor.
/// Returns the background threads and one wake-pipe handle per shard (the
/// [`crate::ServerHandle`] writes to them on shutdown so no reactor waits
/// out a poll tick).
pub(crate) fn spawn(
    inner: &Arc<Inner>,
    listener: TcpListener,
    shards: usize,
    poll_interval: Duration,
) -> io::Result<(Vec<JoinHandle<()>>, Vec<UnixStream>)> {
    listener.set_nonblocking(true)?;

    let mut reactors = Vec::with_capacity(shards);
    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(shards);
    let mut acceptor_wakers: Vec<UnixStream> = Vec::with_capacity(shards);
    let mut handle_wakers: Vec<UnixStream> = Vec::with_capacity(shards);

    // Build every shard's resources *before* spawning any thread: a
    // failure partway through (EMFILE while creating an epoll fd or a wake
    // pipe) must surface as a clean `Err` with everything dropped, not
    // leak already-running reactor threads that nothing can ever shut
    // down (no handle exists to set the shutdown flag).
    for _ in 0..shards.max(1) {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        let (tx, rx) = channel::<TcpStream>();
        reactors.push(Reactor::new(Arc::clone(inner), wake_rx, rx)?);
        handle_wakers.push(wake_tx.try_clone()?);
        acceptor_wakers.push(wake_tx);
        senders.push(tx);
    }
    let mut threads = Vec::with_capacity(reactors.len() + 1);
    for reactor in reactors {
        threads.push(std::thread::spawn(move || reactor.run()));
    }

    let acceptor = {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            let mut next = 0usize;
            acceptor_loop(&listener, &inner, poll_interval, |stream| {
                // Round-robin handoff, failing over past dead shards: a
                // single shard dying must not stop the whole server from
                // accepting. Only when every shard's channel is gone
                // (shutdown, or total reactor loss) does accepting stop.
                let mut stream = Some(stream);
                for attempt in 0..senders.len() {
                    let shard = (next + attempt) % senders.len();
                    match senders[shard].send(stream.take().expect("stream present")) {
                        Ok(()) => {
                            next = next.wrapping_add(attempt + 1);
                            wake(&acceptor_wakers[shard]);
                            return true;
                        }
                        Err(returned) => stream = Some(returned.0),
                    }
                }
                if !inner.is_shutdown() {
                    log_warn!("all reactor shards gone; stopping accept");
                }
                false
            });
        })
    };
    threads.push(acceptor);
    Ok((threads, handle_wakers))
}

/// Writes the one-byte wake signal; a full pipe means the reactor already
/// has a wake-up pending, which is all the byte was for.
pub(crate) fn wake(pipe: &UnixStream) {
    drop((&*pipe).write(&[1u8]));
}

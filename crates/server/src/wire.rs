//! The evilbloom wire protocol: compact length-prefixed binary frames shared
//! by the server and the client.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+-----------+----------+------------------+
//! | len: u32 LE    | version:  | opcode:  | body (len - 2    |
//! | (payload size) | u8 (= 1)  | u8       | bytes)           |
//! +----------------+-----------+----------+------------------+
//! ```
//!
//! The length prefix counts the payload (version byte onwards), so a frame
//! occupies `4 + len` bytes on the wire. All integers are little-endian;
//! floats travel as their IEEE-754 bit patterns. Frames above a configurable
//! cap ([`DEFAULT_MAX_FRAME_BYTES`]) are rejected before any allocation, so
//! a hostile length prefix cannot balloon memory.
//!
//! ## Commands and responses
//!
//! | Opcode | Command | Body | Response |
//! |---|---|---|---|
//! | `0x01` | `PING` | — | `0x81 PONG` |
//! | `0x02` | `INSERT` | item bytes | `0x82 INSERTED` (fresh bits `u32`) |
//! | `0x03` | `QUERY` | item bytes | `0x83 FOUND` (`u8` bool) |
//! | `0x04` | `MINSERT` | item list | `0x84 MINSERTED` (`u32` items, `u64` fresh bits) |
//! | `0x05` | `MQUERY` | item list | `0x85 MFOUND` (`u32` count + bitmap) |
//! | `0x06` | `STATS` | — | `0x86 STATS` (store + per-shard health) |
//! | `0x07` | `ROTATE` | `u8` phase, `u32` shard | `0x87 ROTATED` |
//! | `0x08` | `SNAPSHOT` | — | `0x88 SNAPSHOTTED` (seq `u64`, WAL seq `u64`, shards `u32`, bytes `u64`) |
//! | `0x09` | `METRICS` | — | `0x89 METRICS` (UTF-8 text exposition) |
//! | `0x0A` | `DELETE` | item bytes | `0x8A DELETED` (`u8` was-present) |
//! | `0x0B` | `MDELETE` | item list | `0x8B MDELETED` (`u32` count + bitmap) |
//! | `0x0C` | `TRACE` | — | `0x8C TRACE` (flight-recorder events + suspect table + drift timeline) |
//! | — | — | — | `0xEE ERROR` (UTF-8 message) |
//! | — | — | — | `0xEF UNSUPPORTED` (UTF-8 message) |
//! | — | — | — | `0xED BUSY` (`u32` retry-after hint, ms) |
//! | — | — | — | `0xEC DEGRADED` (UTF-8 reason) |
//!
//! `DELETE`/`MDELETE` are honoured only by deletable filter families
//! (counting backends); elsewhere the server answers `UNSUPPORTED` — a typed
//! capability refusal that, unlike `ERROR` on a protocol violation, leaves
//! the connection open. `BUSY` (admission control tripped; retry after the
//! hinted backoff) and `DEGRADED` (the store's WAL broke, writes are
//! refused until a snapshot repairs it — queries still serve) are typed
//! refusals of the same kind: the connection stays open.
//!
//! An *item list* is a `u32` count followed by `count` entries of `u32`
//! length then bytes. The `MFOUND` bitmap packs answer `i` into bit `i % 8`
//! of byte `i / 8`, padding bits zero.
//!
//! Decoding is allocation-bounded and panic-free on arbitrary input: every
//! malformed, truncated or oversized frame surfaces as a [`WireError`].
//! Commands borrow their item bytes from the receive buffer
//! ([`Command<'a>`]), so the server hands slices straight from the socket
//! buffer to the store's batch APIs without copying.

use std::io::{self, Read};

use evilbloom_store::{BackendKind, StoreStats};
use evilbloom_trace::{TraceEvent, EVENT_PAYLOAD_WORDS};

/// Version byte every payload starts with. Bump on incompatible changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on the payload length a peer will accept (16 MiB) — large
/// enough for tens of thousands of URLs per batch frame, small enough that a
/// hostile length prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

const OP_PING: u8 = 0x01;
const OP_INSERT: u8 = 0x02;
const OP_QUERY: u8 = 0x03;
const OP_MINSERT: u8 = 0x04;
const OP_MQUERY: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_ROTATE: u8 = 0x07;
const OP_SNAPSHOT: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
const OP_DELETE: u8 = 0x0A;
const OP_MDELETE: u8 = 0x0B;
const OP_TRACE: u8 = 0x0C;

const OP_PONG: u8 = 0x81;
const OP_INSERTED: u8 = 0x82;
const OP_FOUND: u8 = 0x83;
const OP_MINSERTED: u8 = 0x84;
const OP_MFOUND: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_ROTATED: u8 = 0x87;
const OP_SNAPSHOT_REPLY: u8 = 0x88;
const OP_METRICS_REPLY: u8 = 0x89;
const OP_DELETED: u8 = 0x8A;
const OP_MDELETED: u8 = 0x8B;
const OP_TRACE_REPLY: u8 = 0x8C;
const OP_ERROR: u8 = 0xEE;
const OP_UNSUPPORTED: u8 = 0xEF;
const OP_BUSY: u8 = 0xED;
const OP_DEGRADED: u8 = 0xEC;

const ROTATE_BEGIN: u8 = 0;
const ROTATE_COMPLETE: u8 = 1;

/// A protocol violation found while decoding a frame. Decoders return these
/// instead of panicking, whatever bytes the peer sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the structure it announced was complete.
    Truncated,
    /// The version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown opcode for this direction (command vs. response).
    BadOpcode(u8),
    /// The length prefix exceeds the configured frame cap. `len` is a `u64`
    /// so the *true* offending size reaches operators even when a payload
    /// under construction exceeds what the `u32` prefix could express.
    Oversized {
        /// Announced (or attempted) payload length, unclamped.
        len: u64,
        /// The cap it violates.
        max: u32,
    },
    /// A count or length on the encode side exceeds what its `u32` wire
    /// field can carry — surfaced instead of silently truncating the frame.
    TooLarge {
        /// Which field overflowed.
        what: &'static str,
        /// The value that did not fit.
        value: u64,
    },
    /// Structurally invalid body (counts or lengths that do not add up,
    /// stray trailing bytes, non-UTF-8 error text, …).
    Malformed(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload is truncated"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::TooLarge { what, value } => {
                write!(f, "{what} of {value} exceeds the u32 wire field")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A request frame. Item bytes are borrowed from the receive buffer, so the
/// server can feed them to the store's batch APIs without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<'a> {
    /// Liveness probe.
    Ping,
    /// Insert one item; the response carries the number of fresh bits set.
    Insert(&'a [u8]),
    /// Membership query for one item.
    Query(&'a [u8]),
    /// Batch insert: one frame visits each store shard at most once.
    InsertBatch(Vec<&'a [u8]>),
    /// Batch query; answers come back in input order as a bitmap.
    QueryBatch(Vec<&'a [u8]>),
    /// Health snapshot: per-shard fill, FPP estimates and pollution alarms.
    Stats,
    /// Start a key rotation on one shard (the old generation keeps
    /// answering; replay the item set, then send `RotateComplete`).
    RotateBegin {
        /// Shard index.
        shard: u32,
    },
    /// Drop a shard's draining generation, finishing its rotation.
    RotateComplete {
        /// Shard index.
        shard: u32,
    },
    /// Write a durable snapshot of the store while serving continues
    /// (requires the server to have persistence attached).
    Snapshot,
    /// Scrape the server's runtime telemetry as a text exposition.
    Metrics,
    /// Delete one item (deletable filter families only; elsewhere the
    /// server answers [`Response::Unsupported`]).
    Delete(&'a [u8]),
    /// Batch delete; answers come back in input order as a bitmap.
    DeleteBatch(Vec<&'a [u8]>),
    /// Fetch the server's forensic trace: recent flight-recorder events,
    /// the per-connection suspect ranking and the drift timeline.
    Trace,
}

impl<'a> Command<'a> {
    /// Appends the complete frame (length prefix included) to `out`.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when a count or length exceeds its `u32` wire
    /// field (`out` is left exactly as it was), instead of silently encoding
    /// a truncated frame.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = begin_frame(out);
        let result = (|| {
            match self {
                Command::Ping => out.push(OP_PING),
                Command::Insert(item) => {
                    out.push(OP_INSERT);
                    out.extend_from_slice(item);
                }
                Command::Query(item) => {
                    out.push(OP_QUERY);
                    out.extend_from_slice(item);
                }
                Command::InsertBatch(items) => {
                    out.push(OP_MINSERT);
                    put_items(out, items)?;
                }
                Command::QueryBatch(items) => {
                    out.push(OP_MQUERY);
                    put_items(out, items)?;
                }
                Command::Stats => out.push(OP_STATS),
                Command::RotateBegin { shard } => {
                    out.push(OP_ROTATE);
                    out.push(ROTATE_BEGIN);
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                Command::RotateComplete { shard } => {
                    out.push(OP_ROTATE);
                    out.push(ROTATE_COMPLETE);
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                Command::Snapshot => out.push(OP_SNAPSHOT),
                Command::Metrics => out.push(OP_METRICS),
                Command::Delete(item) => {
                    out.push(OP_DELETE);
                    out.extend_from_slice(item);
                }
                Command::DeleteBatch(items) => {
                    out.push(OP_MDELETE);
                    put_items(out, items)?;
                }
                Command::Trace => out.push(OP_TRACE),
            }
            finish_frame(out, start)
        })();
        if result.is_err() {
            out.truncate(start);
        }
        result
    }

    /// The command's wire opcode byte, as recorded in forensic trace
    /// events (both rotation phases share `ROTATE`).
    pub(crate) fn opcode(&self) -> u8 {
        match self {
            Command::Ping => OP_PING,
            Command::Insert(_) => OP_INSERT,
            Command::Query(_) => OP_QUERY,
            Command::InsertBatch(_) => OP_MINSERT,
            Command::QueryBatch(_) => OP_MQUERY,
            Command::Stats => OP_STATS,
            Command::RotateBegin { .. } | Command::RotateComplete { .. } => OP_ROTATE,
            Command::Snapshot => OP_SNAPSHOT,
            Command::Metrics => OP_METRICS,
            Command::Delete(_) => OP_DELETE,
            Command::DeleteBatch(_) => OP_MDELETE,
            Command::Trace => OP_TRACE,
        }
    }

    /// Decodes a command from a frame payload (length prefix already
    /// stripped). Borrows item bytes from `payload`.
    pub fn decode(payload: &'a [u8]) -> Result<Command<'a>, WireError> {
        let mut r = Reader::new(payload)?;
        let command = match r.opcode {
            OP_PING => Command::Ping,
            OP_INSERT => Command::Insert(r.rest()),
            OP_QUERY => Command::Query(r.rest()),
            OP_MINSERT => Command::InsertBatch(r.items()?),
            OP_MQUERY => Command::QueryBatch(r.items()?),
            OP_STATS => Command::Stats,
            OP_SNAPSHOT => Command::Snapshot,
            OP_METRICS => Command::Metrics,
            OP_DELETE => Command::Delete(r.rest()),
            OP_MDELETE => Command::DeleteBatch(r.items()?),
            OP_TRACE => Command::Trace,
            OP_ROTATE => {
                let phase = r.u8()?;
                let shard = r.u32()?;
                match phase {
                    ROTATE_BEGIN => Command::RotateBegin { shard },
                    ROTATE_COMPLETE => Command::RotateComplete { shard },
                    _ => return Err(WireError::Malformed("unknown rotate phase")),
                }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        r.done()?;
        Ok(command)
    }
}

/// A response frame (owned: the client keeps it after the receive buffer is
/// reused).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Command::Ping`].
    Pong,
    /// Reply to [`Command::Insert`].
    Inserted {
        /// Bits this insertion flipped 0 → 1.
        fresh_bits: u32,
    },
    /// Reply to [`Command::Query`].
    Found(bool),
    /// Reply to [`Command::InsertBatch`].
    BatchInserted {
        /// Items inserted.
        items: u32,
        /// Bits the batch flipped 0 → 1 across all shards.
        fresh_bits: u64,
    },
    /// Reply to [`Command::QueryBatch`], answers in input order.
    BatchFound(Vec<bool>),
    /// Reply to [`Command::Stats`].
    Stats(WireStats),
    /// Reply to [`Command::RotateBegin`]: the new generation id, or `None`
    /// if a rotation was already draining on that shard.
    Rotated {
        /// New active generation id, when the rotation started.
        generation: Option<u64>,
    },
    /// Reply to [`Command::RotateComplete`]: whether a draining generation
    /// was actually dropped.
    RotationCompleted(bool),
    /// Reply to [`Command::Snapshot`]: where the snapshot landed.
    Snapshotted(WireSnapshot),
    /// Reply to [`Command::Metrics`]: the telemetry text exposition.
    Metrics(String),
    /// Reply to [`Command::Delete`]: whether the item was (probably)
    /// present before removal.
    Deleted {
        /// Every index of the item held a live cell before the decrement.
        was_present: bool,
    },
    /// Reply to [`Command::DeleteBatch`], answers in input order.
    BatchDeleted(Vec<bool>),
    /// Reply to [`Command::Trace`]: the server's forensic trace.
    Trace(WireTrace),
    /// The served filter family cannot honour the request (e.g. `DELETE`
    /// against a plain Bloom backend). Unlike [`Response::Error`] for a
    /// protocol violation, the connection stays open.
    Unsupported(String),
    /// The server is overloaded (admission control tripped): retry after
    /// roughly the hinted backoff. A typed, retryable refusal — the
    /// connection (when one was admitted at all) stays open.
    Busy {
        /// How long the client should wait before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// The store is in degraded read-only mode (its WAL broke): the write
    /// was refused, queries still serve. Carries the operator-facing reason.
    /// The connection stays open; a successful `SNAPSHOT` repairs the store.
    Degraded(String),
    /// The server could not serve the request (protocol violation, shard
    /// out of range, …). Protocol violations also close the connection.
    Error(String),
}

impl Response {
    /// Short constant name of the variant (used in mismatch diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Response::Pong => "PONG",
            Response::Inserted { .. } => "INSERTED",
            Response::Found(_) => "FOUND",
            Response::BatchInserted { .. } => "MINSERTED",
            Response::BatchFound(_) => "MFOUND",
            Response::Stats(_) => "STATS",
            Response::Rotated { .. } => "ROTATED",
            Response::RotationCompleted(_) => "ROTATION_COMPLETED",
            Response::Snapshotted(_) => "SNAPSHOTTED",
            Response::Metrics(_) => "METRICS",
            Response::Deleted { .. } => "DELETED",
            Response::BatchDeleted(_) => "MDELETED",
            Response::Trace(_) => "TRACE",
            Response::Unsupported(_) => "UNSUPPORTED",
            Response::Busy { .. } => "BUSY",
            Response::Degraded(_) => "DEGRADED",
            Response::Error(_) => "ERROR",
        }
    }

    /// Appends the complete frame (length prefix included) to `out`.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when a count or length exceeds its `u32` wire
    /// field (`out` is left exactly as it was), instead of silently encoding
    /// a truncated frame.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = begin_frame(out);
        let result = (|| {
            match self {
                Response::Pong => out.push(OP_PONG),
                Response::Inserted { fresh_bits } => {
                    out.push(OP_INSERTED);
                    out.extend_from_slice(&fresh_bits.to_le_bytes());
                }
                Response::Found(found) => {
                    out.push(OP_FOUND);
                    out.push(u8::from(*found));
                }
                Response::BatchInserted { items, fresh_bits } => {
                    out.push(OP_MINSERTED);
                    out.extend_from_slice(&items.to_le_bytes());
                    out.extend_from_slice(&fresh_bits.to_le_bytes());
                }
                Response::BatchFound(answers) => {
                    out.push(OP_MFOUND);
                    put_bitmap(out, answers)?;
                }
                Response::Stats(stats) => {
                    out.push(OP_STATS_REPLY);
                    stats.encode(out)?;
                }
                Response::Rotated { generation } => {
                    out.push(OP_ROTATED);
                    out.push(ROTATE_BEGIN);
                    out.push(u8::from(generation.is_some()));
                    out.extend_from_slice(&generation.unwrap_or(0).to_le_bytes());
                }
                Response::RotationCompleted(completed) => {
                    out.push(OP_ROTATED);
                    out.push(ROTATE_COMPLETE);
                    out.push(u8::from(*completed));
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                Response::Snapshotted(info) => {
                    out.push(OP_SNAPSHOT_REPLY);
                    out.extend_from_slice(&info.seq.to_le_bytes());
                    out.extend_from_slice(&info.wal_seq.to_le_bytes());
                    out.extend_from_slice(&info.shards.to_le_bytes());
                    out.extend_from_slice(&info.bytes.to_le_bytes());
                }
                Response::Metrics(text) => {
                    out.push(OP_METRICS_REPLY);
                    out.extend_from_slice(text.as_bytes());
                }
                Response::Deleted { was_present } => {
                    out.push(OP_DELETED);
                    out.push(u8::from(*was_present));
                }
                Response::BatchDeleted(answers) => {
                    out.push(OP_MDELETED);
                    put_bitmap(out, answers)?;
                }
                Response::Trace(trace) => {
                    out.push(OP_TRACE_REPLY);
                    trace.encode(out)?;
                }
                Response::Unsupported(message) => {
                    out.push(OP_UNSUPPORTED);
                    out.extend_from_slice(message.as_bytes());
                }
                Response::Busy { retry_after_ms } => {
                    out.push(OP_BUSY);
                    out.extend_from_slice(&retry_after_ms.to_le_bytes());
                }
                Response::Degraded(reason) => {
                    out.push(OP_DEGRADED);
                    out.extend_from_slice(reason.as_bytes());
                }
                Response::Error(message) => {
                    out.push(OP_ERROR);
                    out.extend_from_slice(message.as_bytes());
                }
            }
            finish_frame(out, start)
        })();
        if result.is_err() {
            out.truncate(start);
        }
        result
    }

    /// Decodes a response from a frame payload (length prefix stripped).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload)?;
        let response = match r.opcode {
            OP_PONG => Response::Pong,
            OP_INSERTED => Response::Inserted { fresh_bits: r.u32()? },
            OP_FOUND => Response::Found(r.flag()?),
            OP_MINSERTED => Response::BatchInserted { items: r.u32()?, fresh_bits: r.u64()? },
            OP_MFOUND => Response::BatchFound(r.bitmap()?),
            OP_DELETED => Response::Deleted { was_present: r.flag()? },
            OP_MDELETED => Response::BatchDeleted(r.bitmap()?),
            OP_STATS_REPLY => Response::Stats(WireStats::decode(&mut r)?),
            OP_TRACE_REPLY => Response::Trace(WireTrace::decode(&mut r)?),
            OP_SNAPSHOT_REPLY => Response::Snapshotted(WireSnapshot {
                seq: r.u64()?,
                wal_seq: r.u64()?,
                shards: r.u32()?,
                bytes: r.u64()?,
            }),
            OP_ROTATED => {
                let phase = r.u8()?;
                let flag = r.flag()?;
                let generation = r.u64()?;
                match phase {
                    ROTATE_BEGIN => Response::Rotated { generation: flag.then_some(generation) },
                    ROTATE_COMPLETE => {
                        if generation != 0 {
                            return Err(WireError::Malformed(
                                "rotation-completed carries a generation",
                            ));
                        }
                        Response::RotationCompleted(flag)
                    }
                    _ => return Err(WireError::Malformed("unknown rotate phase")),
                }
            }
            OP_METRICS_REPLY => Response::Metrics(
                String::from_utf8(r.rest().to_vec())
                    .map_err(|_| WireError::Malformed("metrics exposition is not UTF-8"))?,
            ),
            OP_UNSUPPORTED => Response::Unsupported(
                String::from_utf8(r.rest().to_vec())
                    .map_err(|_| WireError::Malformed("unsupported message is not UTF-8"))?,
            ),
            OP_BUSY => Response::Busy { retry_after_ms: r.u32()? },
            OP_DEGRADED => Response::Degraded(
                String::from_utf8(r.rest().to_vec())
                    .map_err(|_| WireError::Malformed("degraded reason is not UTF-8"))?,
            ),
            OP_ERROR => Response::Error(
                String::from_utf8(r.rest().to_vec())
                    .map_err(|_| WireError::Malformed("error message is not UTF-8"))?,
            ),
            other => return Err(WireError::BadOpcode(other)),
        };
        r.done()?;
        Ok(response)
    }
}

/// Where a [`Command::Snapshot`] landed, as it travels over the wire — the
/// serialisable twin of `evilbloom_store::SnapshotInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Sequence number of the snapshot file.
    pub seq: u64,
    /// First WAL segment recovery replays on top of it (0 = no log).
    pub wal_seq: u64,
    /// Shards recorded.
    pub shards: u32,
    /// Bytes written.
    pub bytes: u64,
}

/// Store health snapshot as it travels over the wire — the serialisable twin
/// of [`evilbloom_store::StoreStats`], plus the hardening posture (which the
/// in-process stats do not need to carry, but a remote operator does).
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Whether the store uses keyed routing and index derivation.
    pub hardened: bool,
    /// Total insert calls across shards (active generations).
    pub total_inserted: u64,
    /// Mean shard fill ratio.
    pub mean_fill: f64,
    /// Highest per-shard false-positive estimate.
    pub max_estimated_fpp: f64,
    /// Number of shards currently raising the pollution alarm.
    pub alarms: u32,
    /// Per-shard health, indexed by shard.
    pub shards: Vec<WireShardStats>,
    /// Highest active generation id across shards — how far key rotation
    /// has advanced. Decodes as 0 from servers predating this field.
    pub generation: u64,
    /// Seconds the server has been up. Decodes as 0 from servers predating
    /// this field.
    pub uptime_secs: u64,
    /// Filter family the store serves. Decodes as [`BackendKind::Bloom`]
    /// from servers predating the backend selector.
    pub backend: BackendKind,
    /// Whether the store is in degraded read-only mode (WAL broken, writes
    /// refused until a snapshot repairs it). Decodes as `false` from servers
    /// predating degraded mode.
    pub degraded: bool,
}

/// One shard's health snapshot on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireShardStats {
    /// Active generation id.
    pub generation: u64,
    /// Whether a rotation's rebuild is in flight.
    pub rotating: bool,
    /// Bits in the shard's active filter.
    pub m: u64,
    /// Indexes per item.
    pub k: u32,
    /// Insert calls served by the active generation.
    pub inserted: u64,
    /// Set bits in the active generation.
    pub weight: u64,
    /// Fill ratio `weight / m`.
    pub fill: f64,
    /// Estimated false-positive probability at the current fill.
    pub estimated_fpp: f64,
    /// Whether the fill trajectory looks like a pollution attack.
    pub pollution_alarm: bool,
}

impl WireStats {
    /// Builds the wire form of an in-process stats snapshot.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] if the alarm count exceeds its `u32` wire
    /// field (possible only on a store with more than `u32::MAX` shards).
    pub fn from_stats(
        stats: &StoreStats,
        hardened: bool,
        uptime_secs: u64,
        degraded: bool,
    ) -> Result<Self, WireError> {
        Ok(WireStats {
            hardened,
            total_inserted: stats.total_inserted,
            mean_fill: stats.mean_fill,
            max_estimated_fpp: stats.max_estimated_fpp,
            alarms: wire_count("alarm count", stats.alarms)?,
            generation: stats.shards.iter().map(|s| s.generation).max().unwrap_or(0),
            uptime_secs,
            backend: stats.backend,
            degraded,
            shards: stats
                .shards
                .iter()
                .map(|s| WireShardStats {
                    generation: s.generation,
                    rotating: s.rotating,
                    m: s.m,
                    k: s.k,
                    inserted: s.inserted,
                    weight: s.weight,
                    fill: s.fill,
                    estimated_fpp: s.estimated_fpp,
                    pollution_alarm: s.pollution_alarm,
                })
                .collect(),
        })
    }

    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(u8::from(self.hardened));
        out.extend_from_slice(&self.total_inserted.to_le_bytes());
        out.extend_from_slice(&self.mean_fill.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max_estimated_fpp.to_bits().to_le_bytes());
        out.extend_from_slice(&self.alarms.to_le_bytes());
        out.extend_from_slice(&wire_count("shard count", self.shards.len())?.to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&shard.generation.to_le_bytes());
            out.push(u8::from(shard.rotating));
            out.extend_from_slice(&shard.m.to_le_bytes());
            out.extend_from_slice(&shard.k.to_le_bytes());
            out.extend_from_slice(&shard.inserted.to_le_bytes());
            out.extend_from_slice(&shard.weight.to_le_bytes());
            out.extend_from_slice(&shard.fill.to_bits().to_le_bytes());
            out.extend_from_slice(&shard.estimated_fpp.to_bits().to_le_bytes());
            out.push(u8::from(shard.pollution_alarm));
        }
        // Appended after the original layout so old decoders (which stop at
        // the shard array) and new decoders (which read the tail when it is
        // present) both stay compatible. The backend byte rides after the
        // generation/uptime pair, appended by servers with the backend
        // selector; the degraded flag rides after the backend byte, appended
        // by servers with degraded read-only mode.
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.uptime_secs.to_le_bytes());
        out.push(self.backend.code());
        out.push(u8::from(self.degraded));
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let hardened = r.flag()?;
        let total_inserted = r.u64()?;
        let mean_fill = r.f64()?;
        let max_estimated_fpp = r.f64()?;
        let alarms = r.u32()?;
        let count = r.u32()? as usize;
        // Each shard record is 54 encoded bytes (two u8 flags, one u32, six
        // u64-sized fields); reject counts the body cannot hold before
        // allocating.
        const SHARD_RECORD_BYTES: usize = 8 + 1 + 8 + 4 + 8 + 8 + 8 + 8 + 1;
        if count > r.remaining() / SHARD_RECORD_BYTES {
            return Err(WireError::Malformed("shard count exceeds frame"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(WireShardStats {
                generation: r.u64()?,
                rotating: r.flag()?,
                m: r.u64()?,
                k: r.u32()?,
                inserted: r.u64()?,
                weight: r.u64()?,
                fill: r.f64()?,
                estimated_fpp: r.f64()?,
                pollution_alarm: r.flag()?,
            });
        }
        // Fields appended by newer servers: absent on the wire means a
        // server predating them, not a malformed frame. The tail is strictly
        // layered — the backend byte only ever rides after a full
        // generation/uptime pair (it was introduced later), so a lone stray
        // byte after the shard array is trailing garbage, not a backend code.
        let (generation, uptime_secs, backend, degraded) = if r.remaining() >= 16 {
            let generation = r.u64()?;
            let uptime_secs = r.u64()?;
            let (backend, degraded) = if r.remaining() >= 1 {
                let backend = BackendKind::from_code(r.u8()?)
                    .ok_or(WireError::Malformed("unknown backend code in stats"))?;
                let degraded = if r.remaining() >= 1 { r.flag()? } else { false };
                (backend, degraded)
            } else {
                (BackendKind::Bloom, false)
            };
            (generation, uptime_secs, backend, degraded)
        } else {
            (0, 0, BackendKind::Bloom, false)
        };
        Ok(WireStats {
            hardened,
            total_inserted,
            mean_fill,
            max_estimated_fpp,
            alarms,
            shards,
            generation,
            uptime_secs,
            backend,
            degraded,
        })
    }
}

/// One flight-recorder event as it travels over the wire, with its position
/// in the recorder's history and its coarse uptime timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// The event's position in the recorder's history (monotonic across
    /// ring wraps).
    pub seq: u64,
    /// Milliseconds since the recorder was built.
    pub ts_ms: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

/// One row of the per-connection suspect ranking on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSuspect {
    /// The suspected connection.
    pub conn_id: u64,
    /// Its fresh-bits-per-inserted-item EWMA — the suspicion score. Honest
    /// connections decay toward `k·(1−fill)`; crafted batches pin at `k`.
    pub ewma_bits_per_item: f64,
    /// Insert batches observed on the connection.
    pub batches: u64,
    /// Total items it inserted.
    pub items: u64,
    /// Total fresh bits those inserts set.
    pub fresh_bits: u64,
}

/// One `(inserts, fresh_bits)` sample of the store's drift timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireDriftPoint {
    /// Cumulative items inserted at sample time.
    pub inserts: u64,
    /// Cumulative fresh bits set at sample time.
    pub fresh_bits: u64,
}

/// The server's forensic trace as it travels over the wire: flight-recorder
/// events, the suspect ranking and the drift timeline.
///
/// The suspect and drift sections are an appended, strictly layered tail
/// (like the [`WireStats`] tail fields): decoders read them only when
/// present, so a frame that stops after the event list decodes with empty
/// tables instead of erroring.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// Events ever recorded (including overwritten and dropped ones).
    pub recorded: u64,
    /// Events lost to recorder write contention.
    pub dropped: u64,
    /// Events that scrolled out of the ring, overwritten by newer ones.
    pub overwritten: u64,
    /// The retained events, oldest first.
    pub events: Vec<WireTraceEvent>,
    /// The top-K suspect ranking, most suspicious first.
    pub suspects: Vec<WireSuspect>,
    /// The recent drift timeline, oldest sample first.
    pub drift: Vec<WireDriftPoint>,
}

/// Encoded size of one event record: seq + timestamp + kind byte + payload.
const TRACE_EVENT_BYTES: usize = 8 + 8 + 1 + 8 * EVENT_PAYLOAD_WORDS;
/// Encoded size of one suspect row.
const TRACE_SUSPECT_BYTES: usize = 8 + 8 + 8 + 8 + 8;
/// Encoded size of one drift sample.
const TRACE_DRIFT_BYTES: usize = 8 + 8;

impl WireTrace {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.extend_from_slice(&self.recorded.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&self.overwritten.to_le_bytes());
        out.extend_from_slice(&wire_count("event count", self.events.len())?.to_le_bytes());
        for event in &self.events {
            out.extend_from_slice(&event.seq.to_le_bytes());
            out.extend_from_slice(&event.ts_ms.to_le_bytes());
            let (kind, payload) = event.event.to_raw();
            out.push(kind);
            for word in payload {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        // Appended tail sections, strictly layered: the suspect table rides
        // after the event list, the drift timeline only ever after a full
        // suspect table. Decoders treat an absent section as empty.
        out.extend_from_slice(&wire_count("suspect count", self.suspects.len())?.to_le_bytes());
        for suspect in &self.suspects {
            out.extend_from_slice(&suspect.conn_id.to_le_bytes());
            out.extend_from_slice(&suspect.ewma_bits_per_item.to_bits().to_le_bytes());
            out.extend_from_slice(&suspect.batches.to_le_bytes());
            out.extend_from_slice(&suspect.items.to_le_bytes());
            out.extend_from_slice(&suspect.fresh_bits.to_le_bytes());
        }
        out.extend_from_slice(&wire_count("drift count", self.drift.len())?.to_le_bytes());
        for point in &self.drift {
            out.extend_from_slice(&point.inserts.to_le_bytes());
            out.extend_from_slice(&point.fresh_bits.to_le_bytes());
        }
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let recorded = r.u64()?;
        let dropped = r.u64()?;
        let overwritten = r.u64()?;
        let count = r.u32()? as usize;
        if count > r.remaining() / TRACE_EVENT_BYTES {
            return Err(WireError::Malformed("event count exceeds frame"));
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let seq = r.u64()?;
            let ts_ms = r.u64()?;
            let kind = r.u8()?;
            let mut payload = [0u64; EVENT_PAYLOAD_WORDS];
            for word in &mut payload {
                *word = r.u64()?;
            }
            let event = TraceEvent::from_raw(kind, payload)
                .ok_or(WireError::Malformed("unknown trace event kind"))?;
            events.push(WireTraceEvent { seq, ts_ms, event });
        }
        // Version-tolerant tails: a frame that ends after the event list is
        // a server predating the suspect table (empty, not malformed); one
        // that ends after the suspects predates the drift timeline.
        let mut suspects = Vec::new();
        if r.remaining() >= 4 {
            let count = r.u32()? as usize;
            if count > r.remaining() / TRACE_SUSPECT_BYTES {
                return Err(WireError::Malformed("suspect count exceeds frame"));
            }
            for _ in 0..count {
                suspects.push(WireSuspect {
                    conn_id: r.u64()?,
                    ewma_bits_per_item: r.f64()?,
                    batches: r.u64()?,
                    items: r.u64()?,
                    fresh_bits: r.u64()?,
                });
            }
        }
        let mut drift = Vec::new();
        if r.remaining() >= 4 {
            let count = r.u32()? as usize;
            if count > r.remaining() / TRACE_DRIFT_BYTES {
                return Err(WireError::Malformed("drift count exceeds frame"));
            }
            for _ in 0..count {
                drift.push(WireDriftPoint { inserts: r.u64()?, fresh_bits: r.u64()? });
            }
        }
        Ok(WireTrace { recorded, dropped, overwritten, events, suspects, drift })
    }

    /// Renders the trace as a deterministic text exposition: the retained
    /// events, the suspect table and the drift timeline, in a fixed layout
    /// an operator can diff between scrapes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== evilbloom trace: recorded={} dropped={} overwritten={} retained={} ==",
            self.recorded,
            self.dropped,
            self.overwritten,
            self.events.len(),
        );
        out.push_str("-- events (oldest first) --\n");
        for e in &self.events {
            let _ = write!(out, "[{:>8}ms] #{:<6} {:<15}", e.ts_ms, e.seq, e.event.tag());
            let _ = match e.event {
                TraceEvent::ConnOpened { conn_id } | TraceEvent::ConnClosed { conn_id } => {
                    writeln!(out, " conn={conn_id}")
                }
                TraceEvent::BatchExecuted { conn_id, opcode, items, fresh_bits, latency_ns } => {
                    writeln!(
                        out,
                        " conn={conn_id} op={} items={items} fresh_bits={fresh_bits} \
                         latency_ns={latency_ns}",
                        op_name(opcode)
                    )
                }
                TraceEvent::AlarmTripped { shard } => writeln!(out, " shard={shard}"),
                TraceEvent::RotationBegun { shard, generation } => {
                    writeln!(out, " shard={shard} generation={generation}")
                }
                TraceEvent::RotationCompleted { shard } => writeln!(out, " shard={shard}"),
                TraceEvent::WalFsyncStall { latency_ns } => {
                    writeln!(out, " latency_ns={latency_ns}")
                }
                TraceEvent::SnapshotTaken { seq, bytes } => {
                    writeln!(out, " seq={seq} bytes={bytes}")
                }
                TraceEvent::SlowRequest { conn_id, opcode, latency_ns } => {
                    writeln!(out, " conn={conn_id} op={} latency_ns={latency_ns}", op_name(opcode))
                }
                TraceEvent::DegradedEntered { wal_seq } => {
                    writeln!(out, " wal_seq={wal_seq}")
                }
                TraceEvent::DegradedExited { snapshot_seq } => {
                    writeln!(out, " snapshot_seq={snapshot_seq}")
                }
            };
        }
        out.push_str("-- suspects (fresh-bits-per-insert EWMA, rank order) --\n");
        for (rank, s) in self.suspects.iter().enumerate() {
            let _ = writeln!(
                out,
                "#{} conn={} ewma={:.3} batches={} items={} fresh_bits={}",
                rank + 1,
                s.conn_id,
                s.ewma_bits_per_item,
                s.batches,
                s.items,
                s.fresh_bits,
            );
        }
        out.push_str("-- drift timeline (inserts, fresh_bits) --\n");
        for p in &self.drift {
            let _ = writeln!(out, "({}, {})", p.inserts, p.fresh_bits);
        }
        out
    }
}

/// Human-readable command name for a wire opcode (used by the trace
/// exposition; unknown opcodes — from a newer server — render as `?`).
fn op_name(op: u8) -> &'static str {
    match op {
        OP_PING => "PING",
        OP_INSERT => "INSERT",
        OP_QUERY => "QUERY",
        OP_MINSERT => "MINSERT",
        OP_MQUERY => "MQUERY",
        OP_STATS => "STATS",
        OP_ROTATE => "ROTATE",
        OP_SNAPSHOT => "SNAPSHOT",
        OP_METRICS => "METRICS",
        OP_DELETE => "DELETE",
        OP_MDELETE => "MDELETE",
        OP_TRACE => "TRACE",
        _ => "?",
    }
}

/// Reserves the 4-byte length prefix; returns the frame's start offset.
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(PROTOCOL_VERSION);
    start
}

/// Patches the length prefix reserved by [`begin_frame`]. A payload too
/// large for the `u32` prefix is an error — writing a wrapped length would
/// desynchronise the stream for every frame after it.
fn finish_frame(out: &mut [u8], start: usize) -> Result<(), WireError> {
    let len = wire_count("frame payload length", out.len() - start - 4)?;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Encodes a boolean list as its `u32` count plus a packed bitmap (answer
/// `i` in bit `i % 8` of byte `i / 8`) — the shared `MFOUND`/`MDELETED`
/// body layout.
fn put_bitmap(out: &mut Vec<u8>, answers: &[bool]) -> Result<(), WireError> {
    let count = wire_count("answer count", answers.len())?;
    out.extend_from_slice(&count.to_le_bytes());
    let mut byte = 0u8;
    for (i, &answer) in answers.iter().enumerate() {
        byte |= u8::from(answer) << (i % 8);
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !answers.len().is_multiple_of(8) {
        out.push(byte);
    }
    Ok(())
}

fn put_items(out: &mut Vec<u8>, items: &[&[u8]]) -> Result<(), WireError> {
    out.extend_from_slice(&wire_count("item count", items.len())?.to_le_bytes());
    for item in items {
        out.extend_from_slice(&wire_count("item length", item.len())?.to_le_bytes());
        out.extend_from_slice(item);
    }
    Ok(())
}

/// Converts a host-side count or length to its `u32` wire form, returning
/// [`WireError::TooLarge`] instead of silently truncating values above
/// `u32::MAX` (a truncated count desynchronises or corrupts the frame).
pub fn wire_count(what: &'static str, value: usize) -> Result<u32, WireError> {
    u32::try_from(value).map_err(|_| WireError::TooLarge { what, value: value as u64 })
}

/// Bounds-checked payload cursor; every accessor returns [`WireError`]
/// instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    opcode: u8,
}

impl<'a> Reader<'a> {
    fn new(payload: &'a [u8]) -> Result<Self, WireError> {
        if payload.len() < 2 {
            return Err(WireError::Truncated);
        }
        if payload[0] != PROTOCOL_VERSION {
            return Err(WireError::BadVersion(payload[0]));
        }
        Ok(Reader { buf: payload, pos: 2, opcode: payload[1] })
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn flag(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte is neither 0 nor 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decodes the count-plus-bitmap body shared by `MFOUND` and `MDELETED`.
    fn bitmap(&mut self) -> Result<Vec<bool>, WireError> {
        let count = self.u32()? as usize;
        let bitmap = self.bytes(count.div_ceil(8))?;
        Ok((0..count).map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    fn items(&mut self) -> Result<Vec<&'a [u8]>, WireError> {
        let count = self.u32()? as usize;
        // Every item costs at least its 4-byte length field, so a count the
        // remaining body cannot hold is rejected before allocating.
        if count > self.remaining() / 4 {
            return Err(WireError::Malformed("item count exceeds frame"));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            let len = self.u32()? as usize;
            items.push(self.bytes(len)?);
        }
        Ok(items)
    }

    /// Asserts the payload was fully consumed (canonical encoding only).
    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed("trailing bytes after body"));
        }
        Ok(())
    }
}

/// If `acc[offset..]` starts with a complete frame, returns the payload's
/// absolute `(start, end)` within `acc`. `Ok(None)` means more bytes are
/// needed; an oversized length prefix is an error (the connection should
/// close rather than buffer without bound).
pub fn frame_bounds(
    acc: &[u8],
    offset: usize,
    max_frame_bytes: u32,
) -> Result<Option<(usize, usize)>, WireError> {
    let avail = &acc[offset..];
    if avail.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
    if len > max_frame_bytes {
        return Err(WireError::Oversized { len: u64::from(len), max: max_frame_bytes });
    }
    let len = len as usize;
    if avail.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((offset + 4, offset + 4 + len)))
}

/// Reads one complete frame payload from a blocking stream into `buf`
/// (overwritten). Returns `Ok(false)` on clean end-of-stream before any
/// byte; EOF inside a frame is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max_frame_bytes: u32,
) -> io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized { len: u64::from(len), max: max_frame_bytes }.to_string(),
        ));
    }
    buf.resize(len as usize, 0);
    reader.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_command(command: &Command<'_>) {
        let mut frame = Vec::new();
        command.encode(&mut frame).expect("encodes");
        let (start, end) =
            frame_bounds(&frame, 0, DEFAULT_MAX_FRAME_BYTES).expect("valid").expect("complete");
        assert_eq!(end, frame.len(), "frame is self-delimiting");
        assert_eq!(&Command::decode(&frame[start..end]).expect("decodes"), command);
    }

    fn roundtrip_response(response: &Response) {
        let mut frame = Vec::new();
        response.encode(&mut frame).expect("encodes");
        let (start, end) =
            frame_bounds(&frame, 0, DEFAULT_MAX_FRAME_BYTES).expect("valid").expect("complete");
        assert_eq!(&Response::decode(&frame[start..end]).expect("decodes"), response);
    }

    #[test]
    fn commands_roundtrip() {
        roundtrip_command(&Command::Ping);
        roundtrip_command(&Command::Insert(b"http://example.com/a"));
        roundtrip_command(&Command::Query(b""));
        roundtrip_command(&Command::InsertBatch(vec![b"a".as_slice(), b"", b"ccc"]));
        roundtrip_command(&Command::QueryBatch(vec![]));
        roundtrip_command(&Command::Stats);
        roundtrip_command(&Command::RotateBegin { shard: 7 });
        roundtrip_command(&Command::RotateComplete { shard: u32::MAX });
        roundtrip_command(&Command::Snapshot);
        roundtrip_command(&Command::Metrics);
        roundtrip_command(&Command::Delete(b"http://example.com/victim"));
        roundtrip_command(&Command::DeleteBatch(vec![b"a".as_slice(), b"", b"ccc"]));
        roundtrip_command(&Command::DeleteBatch(vec![]));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::Inserted { fresh_bits: 9 });
        roundtrip_response(&Response::Found(true));
        roundtrip_response(&Response::Found(false));
        roundtrip_response(&Response::BatchInserted { items: 3, fresh_bits: 21 });
        roundtrip_response(&Response::BatchFound(vec![]));
        roundtrip_response(&Response::BatchFound(vec![true; 8]));
        roundtrip_response(&Response::BatchFound(vec![true, false, true]));
        roundtrip_response(&Response::Rotated { generation: Some(4) });
        roundtrip_response(&Response::Rotated { generation: None });
        roundtrip_response(&Response::RotationCompleted(true));
        roundtrip_response(&Response::Snapshotted(WireSnapshot {
            seq: 12,
            wal_seq: 40,
            shards: 8,
            bytes: 1 << 20,
        }));
        roundtrip_response(&Response::Deleted { was_present: true });
        roundtrip_response(&Response::Deleted { was_present: false });
        roundtrip_response(&Response::BatchDeleted(vec![]));
        roundtrip_response(&Response::BatchDeleted(vec![true, false, true, true]));
        roundtrip_response(&Response::Unsupported(
            "the bloom backend does not support delete".to_string(),
        ));
        roundtrip_response(&Response::Busy { retry_after_ms: 0 });
        roundtrip_response(&Response::Busy { retry_after_ms: 25_000 });
        roundtrip_response(&Response::Degraded(String::new()));
        roundtrip_response(&Response::Degraded(
            "store is in degraded read-only mode: injected fault at wal-fsync".to_string(),
        ));
        roundtrip_response(&Response::Error("shard 9 out of range".to_string()));
        roundtrip_response(&Response::Metrics(String::new()));
        roundtrip_response(&Response::Metrics(
            "# TYPE evilbloom_store_inserts_total counter\nevilbloom_store_inserts_total 4\n"
                .to_string(),
        ));
    }

    #[test]
    fn non_utf8_metrics_exposition_is_rejected() {
        let payload = [PROTOCOL_VERSION, OP_METRICS_REPLY, 0xFF, 0xFE];
        assert_eq!(
            Response::decode(&payload),
            Err(WireError::Malformed("metrics exposition is not UTF-8"))
        );
    }

    #[test]
    fn stats_roundtrip() {
        let stats = WireStats {
            hardened: true,
            total_inserted: 12345,
            mean_fill: 0.25,
            max_estimated_fpp: 1e-3,
            alarms: 2,
            generation: 3,
            uptime_secs: 7200,
            backend: BackendKind::Counting,
            degraded: true,
            shards: vec![
                WireShardStats {
                    generation: 3,
                    rotating: true,
                    m: 9586,
                    k: 7,
                    inserted: 1000,
                    weight: 4500,
                    fill: 0.4694,
                    estimated_fpp: 0.005,
                    pollution_alarm: false,
                },
                WireShardStats {
                    generation: 0,
                    rotating: false,
                    m: 9586,
                    k: 7,
                    inserted: 1200,
                    weight: 8000,
                    fill: 0.8345,
                    estimated_fpp: 0.28,
                    pollution_alarm: true,
                },
            ],
        };
        roundtrip_response(&Response::Stats(stats));
    }

    #[test]
    fn stats_from_old_servers_decode_with_zero_tail_fields() {
        // Version tolerance: a payload without the appended tail fields
        // (generation, uptime, backend byte — an older server) must decode
        // with zero/Bloom defaults, not error as truncated.
        let stats = WireStats {
            hardened: false,
            total_inserted: 9,
            mean_fill: 0.5,
            max_estimated_fpp: 0.01,
            alarms: 0,
            generation: 11,
            uptime_secs: 300,
            backend: BackendKind::Scalable,
            degraded: true,
            shards: vec![],
        };
        let mut frame = Vec::new();
        Response::Stats(stats.clone()).encode(&mut frame).expect("encodes");
        // Strip the 18-byte tail (16 + backend byte + degraded flag) and
        // patch the length prefix, recreating the pre-field wire image.
        frame.truncate(frame.len() - 18);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        match Response::decode(&frame[4..]).expect("old layout decodes") {
            Response::Stats(decoded) => {
                assert_eq!(decoded.generation, 0);
                assert_eq!(decoded.uptime_secs, 0);
                assert_eq!(decoded.backend, BackendKind::Bloom);
                assert!(!decoded.degraded);
                assert_eq!(decoded.total_inserted, stats.total_inserted);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
    }

    #[test]
    fn stats_without_the_backend_byte_decode_as_bloom() {
        // A server with the generation/uptime tail but not yet the backend
        // byte (nor the degraded flag layered after it): strip both.
        let stats = WireStats {
            hardened: true,
            total_inserted: 4,
            mean_fill: 0.1,
            max_estimated_fpp: 0.002,
            alarms: 0,
            generation: 2,
            uptime_secs: 60,
            backend: BackendKind::Counting,
            degraded: true,
            shards: vec![],
        };
        let mut frame = Vec::new();
        Response::Stats(stats).encode(&mut frame).expect("encodes");
        frame.truncate(frame.len() - 2);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        match Response::decode(&frame[4..]).expect("tail-less layout decodes") {
            Response::Stats(decoded) => {
                assert_eq!(decoded.backend, BackendKind::Bloom);
                assert!(!decoded.degraded);
                assert_eq!(decoded.generation, 2);
                assert_eq!(decoded.uptime_secs, 60);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
    }

    #[test]
    fn stats_without_the_degraded_flag_decode_as_healthy() {
        // A server with the backend byte but predating degraded mode: strip
        // only the degraded flag.
        let stats = WireStats {
            hardened: true,
            total_inserted: 4,
            mean_fill: 0.1,
            max_estimated_fpp: 0.002,
            alarms: 0,
            generation: 2,
            uptime_secs: 60,
            backend: BackendKind::Counting,
            degraded: true,
            shards: vec![],
        };
        let mut frame = Vec::new();
        Response::Stats(stats).encode(&mut frame).expect("encodes");
        frame.truncate(frame.len() - 1);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        match Response::decode(&frame[4..]).expect("flag-less layout decodes") {
            Response::Stats(decoded) => {
                assert_eq!(decoded.backend, BackendKind::Counting);
                assert!(!decoded.degraded);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
    }

    #[test]
    fn unknown_backend_codes_in_stats_are_rejected() {
        let stats = WireStats {
            hardened: false,
            total_inserted: 0,
            mean_fill: 0.0,
            max_estimated_fpp: 0.0,
            alarms: 0,
            generation: 0,
            uptime_secs: 0,
            backend: BackendKind::Bloom,
            degraded: false,
            shards: vec![],
        };
        let mut frame = Vec::new();
        Response::Stats(stats).encode(&mut frame).expect("encodes");
        // The backend byte sits just before the trailing degraded flag.
        let backend_at = frame.len() - 2;
        frame[backend_at] = 0x7F;
        assert_eq!(
            Response::decode(&frame[4..]),
            Err(WireError::Malformed("unknown backend code in stats"))
        );
    }

    fn sample_trace() -> WireTrace {
        WireTrace {
            recorded: 40,
            dropped: 1,
            overwritten: 8,
            events: vec![
                WireTraceEvent { seq: 32, ts_ms: 5, event: TraceEvent::ConnOpened { conn_id: 5 } },
                WireTraceEvent {
                    seq: 33,
                    ts_ms: 6,
                    event: TraceEvent::BatchExecuted {
                        conn_id: 5,
                        opcode: 0x04,
                        items: 100,
                        fresh_bits: 693,
                        latency_ns: 42_000,
                    },
                },
                WireTraceEvent { seq: 34, ts_ms: 9, event: TraceEvent::AlarmTripped { shard: 2 } },
                WireTraceEvent {
                    seq: 35,
                    ts_ms: 11,
                    event: TraceEvent::RotationBegun { shard: 2, generation: 1 },
                },
                WireTraceEvent {
                    seq: 36,
                    ts_ms: 12,
                    event: TraceEvent::SlowRequest { conn_id: 3, opcode: 0x06, latency_ns: 9 },
                },
            ],
            suspects: vec![
                WireSuspect {
                    conn_id: 5,
                    ewma_bits_per_item: 6.93,
                    batches: 6,
                    items: 600,
                    fresh_bits: 4160,
                },
                WireSuspect {
                    conn_id: 2,
                    ewma_bits_per_item: 2.05,
                    batches: 5,
                    items: 500,
                    fresh_bits: 1100,
                },
            ],
            drift: vec![
                WireDriftPoint { inserts: 100, fresh_bits: 693 },
                WireDriftPoint { inserts: 200, fresh_bits: 1290 },
            ],
        }
    }

    #[test]
    fn trace_roundtrips() {
        roundtrip_response(&Response::Trace(sample_trace()));
        roundtrip_response(&Response::Trace(WireTrace {
            recorded: 0,
            dropped: 0,
            overwritten: 0,
            events: vec![],
            suspects: vec![],
            drift: vec![],
        }));
        roundtrip_command(&Command::Trace);
    }

    #[test]
    fn trace_without_the_suspect_tail_decodes_with_empty_tables() {
        // Version tolerance: a frame that stops after the event list (a
        // server predating the suspect table and drift timeline) decodes
        // with empty tables, not an error.
        let trace = sample_trace();
        let mut frame = Vec::new();
        Response::Trace(trace.clone()).encode(&mut frame).expect("encodes");
        let tail = 4 + trace.suspects.len() * (8 + 8 + 8 + 8 + 8) + 4 + trace.drift.len() * (8 + 8);
        frame.truncate(frame.len() - tail);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        match Response::decode(&frame[4..]).expect("tail-less trace decodes") {
            Response::Trace(decoded) => {
                assert_eq!(decoded.events, trace.events);
                assert_eq!(decoded.recorded, trace.recorded);
                assert!(decoded.suspects.is_empty());
                assert!(decoded.drift.is_empty());
            }
            other => panic!("expected TRACE, got {other:?}"),
        }
    }

    #[test]
    fn trace_without_the_drift_tail_decodes_with_an_empty_timeline() {
        let trace = sample_trace();
        let mut frame = Vec::new();
        Response::Trace(trace.clone()).encode(&mut frame).expect("encodes");
        let tail = 4 + trace.drift.len() * (8 + 8);
        frame.truncate(frame.len() - tail);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        match Response::decode(&frame[4..]).expect("drift-less trace decodes") {
            Response::Trace(decoded) => {
                assert_eq!(decoded.suspects, trace.suspects);
                assert!(decoded.drift.is_empty());
            }
            other => panic!("expected TRACE, got {other:?}"),
        }
    }

    #[test]
    fn unknown_trace_event_kinds_are_rejected() {
        let trace = WireTrace {
            recorded: 1,
            dropped: 0,
            overwritten: 0,
            events: vec![WireTraceEvent {
                seq: 0,
                ts_ms: 0,
                event: TraceEvent::ConnOpened { conn_id: 1 },
            }],
            suspects: vec![],
            drift: vec![],
        };
        let mut frame = Vec::new();
        Response::Trace(trace).encode(&mut frame).expect("encodes");
        // The kind byte sits after the length prefix (4), version + opcode
        // (2), three u64 counters (24), the event count (4) and the event's
        // seq + ts (16).
        frame[4 + 2 + 24 + 4 + 16] = 0xFE;
        assert_eq!(
            Response::decode(&frame[4..]),
            Err(WireError::Malformed("unknown trace event kind"))
        );
    }

    #[test]
    fn hostile_trace_counts_are_rejected_before_allocation() {
        // An event count the body cannot hold.
        let mut payload = vec![PROTOCOL_VERSION, OP_TRACE_REPLY];
        payload.extend_from_slice(&[0u8; 24]); // recorded/dropped/overwritten
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0; 16]);
        assert_eq!(
            Response::decode(&payload),
            Err(WireError::Malformed("event count exceeds frame"))
        );
        // A suspect count the tail cannot hold.
        let mut payload = vec![PROTOCOL_VERSION, OP_TRACE_REPLY];
        payload.extend_from_slice(&[0u8; 24]);
        payload.extend_from_slice(&0u32.to_le_bytes()); // no events
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0; 8]);
        assert_eq!(
            Response::decode(&payload),
            Err(WireError::Malformed("suspect count exceeds frame"))
        );
    }

    #[test]
    fn trace_render_is_deterministic_and_names_the_suspect() {
        let rendered = sample_trace().render();
        assert_eq!(rendered, sample_trace().render());
        assert!(rendered.contains("recorded=40 dropped=1 overwritten=8 retained=5"), "{rendered}");
        assert!(rendered.contains("#1 conn=5 ewma=6.930"), "{rendered}");
        assert!(rendered.contains("op=MINSERT"), "{rendered}");
        assert!(rendered.contains("alarm"), "{rendered}");
        assert!(rendered.contains("rotate-begin"), "{rendered}");
        assert!(rendered.contains("(200, 1290)"), "{rendered}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = Vec::new();
        Command::Ping.encode(&mut frame).expect("encodes");
        frame[4] = 99;
        assert_eq!(Command::decode(&frame[4..]), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn unknown_opcodes_are_rejected_per_direction() {
        // A command opcode is not a valid response and vice versa.
        let payload = [PROTOCOL_VERSION, OP_PING];
        assert_eq!(Response::decode(&payload), Err(WireError::BadOpcode(OP_PING)));
        let payload = [PROTOCOL_VERSION, OP_PONG];
        assert_eq!(Command::decode(&payload), Err(WireError::BadOpcode(OP_PONG)));
    }

    #[test]
    fn hostile_item_count_is_rejected_before_allocation() {
        // MINSERT claiming u32::MAX items in a 10-byte body.
        let mut payload = vec![PROTOCOL_VERSION, OP_MINSERT];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0; 10]);
        assert_eq!(
            Command::decode(&payload),
            Err(WireError::Malformed("item count exceeds frame"))
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut acc = Vec::new();
        acc.extend_from_slice(&(1024u32).to_le_bytes());
        assert_eq!(frame_bounds(&acc, 0, 512), Err(WireError::Oversized { len: 1024, max: 512 }));
    }

    #[test]
    fn oversized_error_carries_true_u64_lengths() {
        // Regression: lengths past `u32::MAX` used to be clamped before
        // reaching the error, so "how far over the cap" was unknowable.
        let err = WireError::Oversized { len: u64::from(u32::MAX) + 123, max: 1024 };
        let shown = err.to_string();
        assert!(shown.contains("4294967418"), "{shown}");
    }

    #[test]
    fn wire_count_errors_exactly_past_the_u32_boundary() {
        // The encode-side guard behind the `as u32` bugfix sweep: values up
        // to u32::MAX pass through unchanged, one past errors with the true
        // value instead of silently truncating to 0.
        assert_eq!(wire_count("count", 0), Ok(0));
        assert_eq!(wire_count("count", u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(
            wire_count("count", u32::MAX as usize + 1),
            Err(WireError::TooLarge { what: "count", value: u64::from(u32::MAX) + 1 })
        );
    }

    #[test]
    fn from_stats_rejects_alarm_counts_past_u32() {
        // Regression for the silent `stats.alarms as u32` narrowing: a
        // count past the wire field must error, not truncate. (Reaching it
        // for real needs > u32::MAX shards; the host-side struct gets us to
        // the boundary without them.)
        let stats = StoreStats {
            backend: BackendKind::Bloom,
            shards: Vec::new(),
            total_inserted: 0,
            mean_fill: 0.0,
            max_estimated_fpp: 0.0,
            alarms: u32::MAX as usize + 1,
        };
        assert_eq!(
            WireStats::from_stats(&stats, false, 0, false),
            Err(WireError::TooLarge { what: "alarm count", value: u64::from(u32::MAX) + 1 })
        );
        let fits = StoreStats { alarms: u32::MAX as usize, ..stats };
        assert_eq!(WireStats::from_stats(&fits, false, 0, false).expect("fits").alarms, u32::MAX);
    }

    #[test]
    fn encoded_frames_stay_self_delimiting_back_to_back() {
        // The frame boundary contract the fallible encoders preserve: two
        // frames written into one buffer parse back independently.
        let mut out = Vec::new();
        Response::Pong.encode(&mut out).expect("encodes");
        let first_len = out.len();
        Response::Found(true).encode(&mut out).expect("encodes");
        let (s1, e1) = frame_bounds(&out, 0, 1024).expect("valid").expect("complete");
        assert_eq!(Response::decode(&out[s1..e1]), Ok(Response::Pong));
        assert_eq!(e1, first_len);
        let (s2, e2) = frame_bounds(&out, e1, 1024).expect("valid").expect("complete");
        assert_eq!(Response::decode(&out[s2..e2]), Ok(Response::Found(true)));
        assert_eq!(e2, out.len());
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let mut frame = Vec::new();
        Command::Insert(b"abcdef").encode(&mut frame).expect("encodes");
        for cut in 0..frame.len() {
            assert_eq!(frame_bounds(&frame[..cut], 0, 1024), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let payload = [PROTOCOL_VERSION, OP_PING, 0xFF];
        assert_eq!(
            Command::decode(&payload),
            Err(WireError::Malformed("trailing bytes after body"))
        );
    }

    #[test]
    fn read_frame_reports_clean_and_dirty_eof() {
        let mut frame = Vec::new();
        Command::Ping.encode(&mut frame).expect("encodes");

        let mut buf = Vec::new();
        let mut empty: &[u8] = &[];
        assert!(!read_frame(&mut empty, &mut buf, 1024).expect("clean EOF"));

        let mut cut: &[u8] = &frame[..2];
        let err = read_frame(&mut cut, &mut buf, 1024).expect_err("EOF in prefix");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut cut: &[u8] = &frame[..5];
        let err = read_frame(&mut cut, &mut buf, 1024).expect_err("EOF in payload");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut whole: &[u8] = &frame;
        assert!(read_frame(&mut whole, &mut buf, 1024).expect("complete"));
        assert_eq!(Command::decode(&buf), Ok(Command::Ping));
    }
}

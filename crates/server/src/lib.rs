//! # evilbloom-server
//!
//! The network serving layer in front of [`evilbloom_store::BloomStore`]:
//! a dependency-free (std-only) TCP server, a matching client, and the
//! compact length-prefixed wire protocol they share.
//!
//! The paper's threat model is a *remote* adversary degrading a
//! Bloom-filter-backed service with chosen insertions and queries. This
//! crate closes the gap between that model and the in-process store: the
//! pollution and forgery engines of `evilbloom-attacks` can now hit the
//! service over a socket exactly as the paper envisions (see
//! `examples/remote_attack.rs` at the workspace root), while `STATS` exposes
//! the per-shard pollution alarms to a remote operator.
//!
//! * [`wire`] — the protocol: versioned, length-prefixed binary frames
//!   (`PING`/`INSERT`/`QUERY`/`MINSERT`/`MQUERY`/`STATS`/`ROTATE`), one
//!   encoder/decoder shared by both ends, panic-free on arbitrary input,
//!   with commands borrowing item bytes straight from the receive buffer;
//! * [`server`] — acceptor + worker-thread pool, pipelined request loop
//!   (every socket read drains all complete frames and answers them in one
//!   write), batch commands routed through the store's one-lock-visit-per-
//!   shard batch APIs, graceful bounded shutdown;
//! * [`client`] — typed helpers plus explicit [`Client::send`] /
//!   [`Client::recv`] pipelining.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//!
//! use evilbloom_server::{Client, Server, ServerConfig};
//! use evilbloom_store::{BloomStore, StoreConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let store = Arc::new(BloomStore::new(
//!     StoreConfig::hardened(4, 4_000, 0.01),
//!     &mut StdRng::seed_from_u64(42),
//! ));
//! let handle = Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.insert_batch(&["/a", "/b", "/c"]).unwrap();
//! assert_eq!(client.query_batch(&["/a", "/b", "/nope"]).unwrap(), vec![true, true, false]);
//! assert_eq!(client.stats().unwrap().total_inserted, 3);
//!
//! drop(client);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, RemoteBatchOutcome};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{
    Command, Response, WireError, WireShardStats, WireStats, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};

//! # evilbloom-server
//!
//! The network serving layer in front of [`evilbloom_store::BloomStore`]:
//! a dependency-free (std-only) TCP server with two I/O backends, a
//! matching client with connection pooling, and the compact
//! length-prefixed wire protocol they share.
//!
//! The paper's threat model is a *remote* adversary degrading a
//! Bloom-filter-backed service with chosen insertions and queries. This
//! crate closes the gap between that model and the in-process store: the
//! pollution and forgery engines of `evilbloom-attacks` can now hit the
//! service over a socket exactly as the paper envisions (see
//! `examples/remote_attack.rs` at the workspace root), while `STATS` exposes
//! the per-shard pollution alarms to a remote operator. How much concurrent
//! traffic the service absorbs bounds the attack's measurable blast radius,
//! so connection scaling is a first-class concern here.
//!
//! * [`wire`] — the protocol: versioned, length-prefixed binary frames
//!   (`PING`/`INSERT`/`QUERY`/`MINSERT`/`MQUERY`/`DELETE`/`MDELETE`/
//!   `STATS`/`ROTATE`/`METRICS`/`TRACE`), one encoder/decoder shared by
//!   both ends, panic-free
//!   on arbitrary input, with commands borrowing item bytes straight from
//!   the receive buffer. `DELETE` is honoured by deletable filter families
//!   and answered with a typed `UNSUPPORTED` elsewhere;
//! * [`server`] — the serving layer behind a [`Backend`] switch:
//!   - **threaded** (default, portable): acceptor + blocking worker-thread
//!     pool, one worker per active connection;
//!   - **async** (Linux): an epoll reactor built on raw
//!     `epoll_create1`/`epoll_ctl`/`epoll_wait` syscalls (no `libc`/`mio`
//!     dependency), N reactor shards with round-robin accept handoff, every
//!     connection a non-blocking state machine — open connections scale to
//!     C10k and beyond instead of being capped by the worker pool.
//!
//!   Both backends share the frame-drain/execute path, the recycled
//!   read/write buffer pool, and the store's one-lock-visit-per-shard batch
//!   APIs, so the entire protocol test suite applies to either;
//! * [`client`] — typed helpers plus explicit [`Client::send`] /
//!   [`Client::recv`] pipelining;
//! * [`client_pool`] — [`ClientPool`]: checkout/checkin connection reuse
//!   with probed dead-connection replacement (counted in
//!   [`PoolHealth`]), and pooled pipelined batch helpers that stripe one
//!   logical batch over several sockets;
//! * [`retry`] — the seeded decorrelated-jitter backoff schedule
//!   ([`RetryPolicy`]/[`Backoff`]) behind [`ResilientClient`]: connect +
//!   per-request deadlines ([`ClientConfig`]), bounded idempotency-aware
//!   retries, typed `BUSY`/`DEGRADED` refusals surfaced as
//!   [`ClientError`] variants;
//! * [`remote`] — [`RemoteStore`]: the one trait both `Client` and
//!   `ClientPool` implement, so attack drivers and bench workloads are
//!   generic over a single connection vs a pool.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//!
//! use evilbloom_server::{Backend, Client, Server, ServerConfig};
//! use evilbloom_store::BloomStore;
//!
//! // Any filter family serves: add `.counting(4)` or `.scalable(0.9)`
//! // before `.build()` to serve a deletable or growing store instead.
//! let store = Arc::new(
//!     BloomStore::builder().shards(4).capacity(4_000).target_fpp(0.01).seed(42).build(),
//! );
//! // Backend::Async selects the Linux epoll reactor instead.
//! let config = ServerConfig::with_backend(Backend::Threaded);
//! let handle = Server::spawn(store, "127.0.0.1:0", config).unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.insert_batch(&["/a", "/b", "/c"]).unwrap();
//! assert_eq!(client.query_batch(&["/a", "/b", "/nope"]).unwrap(), vec![true, true, false]);
//! assert_eq!(client.stats().unwrap().total_inserted, 3);
//!
//! drop(client);
//! handle.shutdown();
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place: the
// four raw epoll/close syscall declarations in `reactor::sys` (the build
// environment is offline, so there is no `libc` to delegate them to).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod buffers;
pub mod client;
pub mod client_pool;
mod conn;
mod metrics;
#[cfg(target_os = "linux")]
mod reactor;
pub mod remote;
pub mod retry;
pub mod server;
pub mod wire;

pub use backend::{fd_soft_limit, loopback_connection_budget, Backend};
pub use client::{Client, ClientConfig, ClientError, RemoteBatchOutcome, ResilientClient};
pub use client_pool::{ClientPool, PoolHealth};
pub use remote::{RemoteStore, POOL_FRAME_ITEMS};
pub use retry::{Backoff, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{
    Command, Response, WireDriftPoint, WireError, WireShardStats, WireSnapshot, WireStats,
    WireSuspect, WireTrace, WireTraceEvent, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// The typed flight-recorder event carried inside [`WireTraceEvent`]
/// (re-exported from `evilbloom-trace` so clients can match on it without
/// a direct dependency).
pub use evilbloom_trace::TraceEvent;

//! Client-resilience and graceful-degradation tests: connect deadlines
//! against a blackholed listener, reconnect-and-retry behaviour, and the
//! degraded read-only mode observed over the wire on both serving
//! backends.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evilbloom_fault::{self as fault, FaultPlan, FaultPoint};
use evilbloom_server::{
    Backend, Client, ClientConfig, ClientError, ResilientClient, RetryPolicy, Server, ServerConfig,
    ServerHandle, TraceEvent,
};
use evilbloom_store::{BloomStore, PersistConfig};

fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
}

/// The OS-default connect timeout against a peer that never answers is
/// minutes; `ClientConfig::connect_timeout` must bound it. A listener
/// whose accept backlog has been filled (and is never drained) drops
/// further SYNs — the classic local blackhole.
#[test]
fn connect_timeout_fails_fast_against_a_blackholed_listener() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Fill the accept backlog; the listener never accepts. Once full, a
    // probe connect times out instead of completing.
    let mut parked = Vec::new();
    let mut blackholed = false;
    for _ in 0..512 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
            Ok(stream) => parked.push(stream),
            Err(_) => {
                blackholed = true;
                break;
            }
        }
    }

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(200)),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let result = Client::connect_with(addr, &config);
    let elapsed = started.elapsed();

    // The regression being guarded: without the deadline this call hangs
    // for the OS default (minutes). With it, it must return promptly —
    // and with the backlog verifiably full, it must be a timeout error.
    assert!(elapsed < Duration::from_secs(5), "connect deadline not honoured: {elapsed:?}");
    if blackholed {
        assert!(result.is_err(), "connect into a full backlog must time out");
    }
    drop(parked);
}

/// `ResilientClient` re-dials and replays idempotent requests when the
/// server restarts underneath it; the counters expose the churn.
#[test]
fn resilient_client_survives_a_server_restart() {
    let store =
        Arc::new(BloomStore::builder().shards(2).capacity(4_000).target_fpp(0.01).seed(3).build());
    let handle = Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = handle.local_addr();

    let config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            seed: 1,
            retry_writes: false,
        },
        ..ClientConfig::default()
    };
    let mut client = ResilientClient::connect(addr, config).expect("dial");
    client.ping().expect("first ping");

    // Restart the server under the client: the pooled socket dies.
    handle.shutdown();
    let handle = Server::spawn(store, addr, ServerConfig::default()).expect("rebind the same port");

    client.ping().expect("ping after restart is retried onto a fresh connection");
    assert!(client.reconnects() >= 1, "the restart must have forced a re-dial");
    handle.shutdown();
}

/// Writes are not replayed by default after a connection-level failure —
/// the error surfaces once the budget is spent on reconnecting.
#[test]
fn writes_do_not_retry_without_explicit_opt_in() {
    let store =
        Arc::new(BloomStore::builder().shards(2).capacity(4_000).target_fpp(0.01).seed(3).build());
    let handle =
        Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = handle.local_addr();
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(200)),
        retry: RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            seed: 1,
            retry_writes: false,
        },
        ..ClientConfig::default()
    };
    let mut client = ResilientClient::connect(addr, config).expect("dial");
    client.ping().expect("ping");

    // Kill the server for good: the next write fails at the connection
    // level and must NOT be retried (retry_writes is off), so exactly
    // zero retry delays are consumed by it.
    handle.shutdown();
    let err = client.insert(b"lost-ack").expect_err("write into a dead server fails");
    match err {
        ClientError::Io(_) | ClientError::Disconnected => {}
        other => panic!("expected a transport error, got {other}"),
    }
    assert_eq!(client.retries(), 0, "a non-idempotent write must not be replayed");
}

fn spawn_persistent(backend: Backend, dir: &std::path::Path) -> (ServerHandle, Arc<BloomStore>) {
    let mut store = BloomStore::builder()
        .shards(2)
        .capacity(4_000)
        .target_fpp(0.01)
        .unhardened()
        .seed(9)
        .build();
    store.enable_persistence(&PersistConfig::new(dir)).expect("enable persistence");
    let store = Arc::new(store);
    let handle =
        Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
            .expect("bind loopback");
    (handle, store)
}

/// The full degraded lifecycle over the wire, on both backends: a WAL
/// break turns writes into typed `DEGRADED` refusals while queries stay
/// served, `STATS` raises the degraded flag, a remote `SNAPSHOT` repairs
/// the log, and the trace records entry before exit.
#[test]
fn degraded_read_only_mode_over_the_wire_on_both_backends() {
    for backend in backends() {
        let dir = std::env::temp_dir()
            .join(format!("evilbloom-degraded-wire-{}-{backend}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create store dir");

        let (handle, _store) = spawn_persistent(backend, &dir);
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        client.insert(b"healthy-write").expect("insert before the break");

        // Break the WAL on the next fsync: the commit of the write below
        // fails, the store enters degraded read-only mode, and the write
        // is refused (never acked).
        {
            let _chaos = fault::arm(FaultPlan::new(5).fail_nth(FaultPoint::WalFsync, 1));
            let err = client.insert(b"breaking-write").expect_err("the breaking write is refused");
            match err {
                ClientError::Degraded(reason) => {
                    assert!(reason.contains("degraded"), "refusal names the mode: {reason}")
                }
                other => panic!("{backend}: expected DEGRADED, got {other}"),
            }
        }

        // The connection survived the typed refusal; reads are served.
        // (The breaking write itself was applied in-memory before its
        // commit failed — refused means *unacked*, not invisible — but
        // every later write is refused by the pre-guard before applying.)
        assert!(client.query(b"healthy-write").expect("queries still served"));
        let err = client.insert_batch(&[b"still-refused".as_slice()]).expect_err("still degraded");
        assert!(matches!(err, ClientError::Degraded(_)), "{backend}: {err}");
        assert!(
            !client.query(b"still-refused").expect("query the refused item"),
            "{backend}: a pre-guard-refused write must not be applied"
        );

        let stats = client.stats().expect("stats while degraded");
        assert!(stats.degraded, "{backend}: STATS must raise the degraded flag");

        // Operator repair: SNAPSHOT rewrites the state and rotates onto a
        // fresh WAL segment; the store exits degraded mode.
        client.snapshot().expect("repair snapshot");
        let stats = client.stats().expect("stats after repair");
        assert!(!stats.degraded, "{backend}: repair must clear the degraded flag");
        client.insert(b"post-repair-write").expect("writes accepted again");

        // Entry before exit on the flight recorder.
        let trace = client.trace().expect("trace");
        let entered = trace
            .events
            .iter()
            .position(|e| matches!(e.event, TraceEvent::DegradedEntered { .. }))
            .unwrap_or_else(|| panic!("{backend}: DegradedEntered not recorded"));
        let exited = trace
            .events
            .iter()
            .position(|e| matches!(e.event, TraceEvent::DegradedExited { .. }))
            .unwrap_or_else(|| panic!("{backend}: DegradedExited not recorded"));
        assert!(entered < exited, "{backend}: degraded exit recorded before entry");

        drop(client);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `BUSY` admission rejections carry the configured retry-after hint and
/// surface as the typed [`ClientError::Busy`].
#[test]
fn busy_rejections_surface_with_the_retry_after_hint() {
    // A zero-worker admission queue is impractical to wedge reliably, so
    // exercise the wire path directly: a pending-work limit of… the
    // smallest possible, and a flood from connections that never read.
    let store =
        Arc::new(BloomStore::builder().shards(2).capacity(4_000).target_fpp(0.01).seed(11).build());
    let config = ServerConfig {
        workers: 1,
        max_pending_conns: 1,
        busy_retry_after: Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(store, "127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.local_addr();

    // Wedge the single worker with a connection that sends nothing (the
    // worker blocks reading its first frame), then stack connections
    // until one draws a BUSY. Probes carry a short request deadline: a
    // probe that lands in the pending queue (not yet rejected) would
    // otherwise block forever behind the wedged worker.
    let wedge = TcpStream::connect(addr).expect("wedge connection");
    let probe_config = ClientConfig {
        request_timeout: Some(Duration::from_millis(300)),
        ..ClientConfig::default()
    };
    let mut saw_busy = false;
    let mut parked = Vec::new();
    for _ in 0..64 {
        let mut probe = match Client::connect_with(addr, &probe_config) {
            Ok(probe) => probe,
            Err(_) => continue,
        };
        match probe.ping() {
            Err(ClientError::Busy { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 250, "hint must match busy_retry_after");
                saw_busy = true;
                break;
            }
            // Timeouts/disconnects mean the probe sits in the pending
            // queue (or raced the BUSY frame); park it so the queue stays
            // occupied and the next accept is rejected.
            Err(_) => parked.push(probe),
            Ok(()) => parked.push(probe),
        }
    }
    assert!(saw_busy, "no connection drew a BUSY rejection");
    drop(wedge);
    drop(parked);
    handle.shutdown();
}

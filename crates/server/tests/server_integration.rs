//! End-to-end tests of the TCP serving layer over loopback: every command,
//! pipelining, concurrent clients, protocol-violation handling and graceful
//! shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use evilbloom_server::{Client, ClientError, Command, Response, Server, ServerConfig};
use evilbloom_store::{BloomStore, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spawn(hardened: bool, shards: usize) -> (evilbloom_server::ServerHandle, Arc<BloomStore>) {
    let config = if hardened {
        StoreConfig::hardened(shards, 4_000, 0.01)
    } else {
        StoreConfig::unhardened(shards, 4_000, 0.01)
    };
    let store = Arc::new(BloomStore::new(config, &mut StdRng::seed_from_u64(42)));
    let handle = Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    (handle, store)
}

#[test]
fn every_command_round_trips() {
    let (handle, store) = spawn(true, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    client.ping().expect("ping");
    assert!(client.insert(b"item-a").expect("insert") > 0);
    assert!(client.query(b"item-a").expect("query"));
    assert!(!client.query(b"item-b").expect("query"));

    let members: Vec<String> = (0..200).map(|i| format!("batch-{i}")).collect();
    let outcome = client.insert_batch(&members).expect("minsert");
    assert_eq!(outcome.items, 200);
    assert!(outcome.fresh_bits > 0);
    let answers = client.query_batch(&members).expect("mquery");
    assert!(answers.iter().all(|&a| a), "no false negatives");

    // The wire stats must agree with the in-process view.
    let remote = client.stats().expect("stats");
    let local = store.stats();
    assert!(remote.hardened);
    assert_eq!(remote.total_inserted, local.total_inserted);
    assert_eq!(remote.alarms as usize, local.alarms);
    assert_eq!(remote.shards.len(), local.shards.len());
    for (wire, host) in remote.shards.iter().zip(&local.shards) {
        assert_eq!(wire.m, host.m);
        assert_eq!(wire.k, host.k);
        assert_eq!(wire.inserted, host.inserted);
        assert_eq!(wire.weight, host.weight);
    }

    handle.shutdown();
}

#[test]
fn rotation_over_the_wire_drops_polluted_bits() {
    let (handle, _store) = spawn(true, 2);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let members: Vec<String> = (0..100).map(|i| format!("keep-{i}")).collect();
    client.insert_batch(&members).expect("minsert");
    client.insert(b"pollution").expect("insert");

    for shard in 0..2 {
        assert_eq!(client.rotate_begin(shard).expect("begin"), Some(1));
        // A second begin while draining is refused, not an error.
        assert_eq!(client.rotate_begin(shard).expect("begin again"), None);
    }
    // Mid-rotation the old generation still answers.
    assert!(client.query(b"pollution").expect("query"));
    client.insert_batch(&members).expect("replay");
    for shard in 0..2 {
        assert!(client.rotate_complete(shard).expect("complete"));
        assert!(!client.rotate_complete(shard).expect("nothing left"));
    }
    assert!(client.query_batch(&members).expect("mquery").iter().all(|&a| a));
    assert!(!client.query(b"pollution").expect("query"), "unreplayed pollution is gone");

    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (handle, _store) = spawn(true, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let items: Vec<String> = (0..50).map(|i| format!("pipeline-{i}")).collect();
    client.insert_batch(&items).expect("minsert");

    // Queue 100 single queries (alternating hit/miss) without reading.
    for (i, item) in items.iter().enumerate() {
        client.send(&Command::Query(item.as_bytes())).expect("send hit");
        client.send(&Command::Query(format!("absent-{i}").as_bytes())).expect("send miss");
    }
    for i in 0..50 {
        assert_eq!(client.recv().expect("hit"), Response::Found(true), "hit {i}");
        assert_eq!(client.recv().expect("miss"), Response::Found(false), "miss {i}");
    }
    handle.shutdown();
}

#[test]
fn concurrent_clients_share_the_store() {
    let (handle, store) = spawn(true, 4);
    let addr = handle.local_addr();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let items: Vec<String> = (0..100).map(|i| format!("worker-{worker}-{i}")).collect();
                client.insert_batch(&items).expect("minsert");
                assert!(client.query_batch(&items).expect("mquery").iter().all(|&a| a));
            });
        }
    });
    assert_eq!(store.stats().total_inserted, 400);
    assert_eq!(handle.requests_served(), 8);
    handle.shutdown();
}

#[test]
fn semantic_errors_keep_the_connection_alive() {
    let (handle, _store) = spawn(true, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    match client.rotate_begin(99) {
        Err(ClientError::Remote(message)) => assert!(message.contains("out of range")),
        other => panic!("expected a remote error, got {other:?}"),
    }
    client.ping().expect("connection still serves");
    handle.shutdown();
}

#[test]
fn protocol_violations_get_an_error_and_a_close() {
    let (handle, _store) = spawn(true, 4);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    // A frame with a bad version byte.
    stream.write_all(&[2u8, 0, 0, 0, 99, 0x01]).expect("write");
    stream.flush().expect("flush");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("server closes after the error frame");
    let (start, end) = evilbloom_server::wire::frame_bounds(&raw, 0, 1 << 20)
        .expect("cap")
        .expect("one complete error frame");
    match Response::decode(&raw[start..end]).expect("decodes") {
        Response::Error(message) => assert!(message.contains("version"), "{message}"),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_eq!(end, raw.len(), "nothing after the error frame");
    handle.shutdown();
}

#[test]
fn oversized_frames_are_refused_without_allocation() {
    let store = Arc::new(BloomStore::new(
        StoreConfig::hardened(2, 1_000, 0.01),
        &mut StdRng::seed_from_u64(1),
    ));
    let config = ServerConfig { max_frame_bytes: 1024, ..ServerConfig::default() };
    let handle = Server::spawn(store, "127.0.0.1:0", config).expect("bind");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    // Claim a 1 GiB payload; send only the prefix.
    stream.write_all(&(1u32 << 30).to_le_bytes()).expect("write");
    stream.flush().expect("flush");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("server answers and closes");
    let (start, end) =
        evilbloom_server::wire::frame_bounds(&raw, 0, 1 << 20).expect("cap").expect("error frame");
    match Response::decode(&raw[start..end]).expect("decodes") {
        Response::Error(message) => assert!(message.contains("exceeds"), "{message}"),
        other => panic!("expected ERROR, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn shutdown_is_graceful_and_bounded() {
    let (handle, _store) = spawn(true, 4);
    let addr = handle.local_addr();
    // An idle connection is open when shutdown starts.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    let started = std::time::Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with an idle connection open",
        started.elapsed()
    );

    // The idle connection was closed by the server side.
    assert!(client.ping().is_err(), "server should be gone");
    // New connections are refused or immediately closed.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.ping().is_err(), "no thread should serve a late client"),
    }
}

#[test]
fn oversized_commands_are_rejected_client_side_before_sending() {
    let (handle, _store) = spawn(true, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.set_max_frame_bytes(256);
    let big = vec![0xAAu8; 1024];
    let err = client.send(&Command::Insert(&big)).expect_err("must reject locally");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // The connection was never poisoned: normal traffic still works.
    client.set_max_frame_bytes(evilbloom_server::DEFAULT_MAX_FRAME_BYTES);
    client.ping().expect("connection unaffected");
    handle.shutdown();
}

#[test]
fn unhardened_server_reports_its_posture() {
    let (handle, _store) = spawn(false, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    assert!(!client.stats().expect("stats").hardened);
    handle.shutdown();
}

//! End-to-end tests of the TCP serving layer over loopback, parametrized
//! over both I/O backends (threaded worker pool and Linux epoll reactor):
//! every command, pipelining, concurrent clients, protocol-violation
//! handling, graceful shutdown — plus reactor-specific coverage
//! (byte-at-a-time partial-frame delivery, ≥1000 concurrent connections).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use evilbloom_server::{
    Backend, Client, ClientError, ClientPool, Command, Response, Server, ServerConfig, ServerHandle,
};
use evilbloom_store::{BackendKind, BloomStore, ConcurrentCountingFilter, PersistConfig};

/// Unique scratch directory, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("evilbloom-server-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every backend the current platform supports (both, on Linux). Each test
/// below runs its whole scenario once per backend against a fresh server,
/// so the entire suite gates the async reactor exactly as it gates the
/// threaded pool.
fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
}

fn spawn_on(backend: Backend, hardened: bool, shards: usize) -> (ServerHandle, Arc<BloomStore>) {
    let builder = BloomStore::builder().shards(shards).capacity(4_000).target_fpp(0.01).seed(42);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    let store = Arc::new(builder.build());
    let handle =
        Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
            .expect("bind loopback");
    (handle, store)
}

#[test]
fn async_backend_is_supported_on_linux() {
    assert_eq!(Backend::Async.is_supported(), cfg!(target_os = "linux"));
    if cfg!(target_os = "linux") {
        assert_eq!(backends(), vec![Backend::Threaded, Backend::Async]);
    }
}

#[test]
fn every_command_round_trips() {
    for backend in backends() {
        let (handle, store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        client.ping().expect("ping");
        assert!(client.insert(b"item-a").expect("insert") > 0);
        assert!(client.query(b"item-a").expect("query"));
        assert!(!client.query(b"item-b").expect("query"));

        let members: Vec<String> = (0..200).map(|i| format!("batch-{i}")).collect();
        let outcome = client.insert_batch(&members).expect("minsert");
        assert_eq!(outcome.items, 200);
        assert!(outcome.fresh_bits > 0);
        let answers = client.query_batch(&members).expect("mquery");
        assert!(answers.iter().all(|&a| a), "no false negatives ({backend})");

        // The wire stats must agree with the in-process view.
        let remote = client.stats().expect("stats");
        let local = store.stats();
        assert!(remote.hardened);
        assert_eq!(remote.backend, BackendKind::Bloom, "{backend}");
        assert_eq!(remote.total_inserted, local.total_inserted);
        assert_eq!(remote.alarms as usize, local.alarms);
        assert_eq!(remote.shards.len(), local.shards.len());
        for (wire, host) in remote.shards.iter().zip(&local.shards) {
            assert_eq!(wire.m, host.m);
            assert_eq!(wire.k, host.k);
            assert_eq!(wire.inserted, host.inserted);
            assert_eq!(wire.weight, host.weight);
        }

        handle.shutdown();
    }
}

#[test]
fn rotation_over_the_wire_drops_polluted_bits() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 2);
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let members: Vec<String> = (0..100).map(|i| format!("keep-{i}")).collect();
        client.insert_batch(&members).expect("minsert");
        client.insert(b"pollution").expect("insert");

        for shard in 0..2 {
            assert_eq!(client.rotate_begin(shard).expect("begin"), Some(1));
            // A second begin while draining is refused, not an error.
            assert_eq!(client.rotate_begin(shard).expect("begin again"), None);
        }
        // Mid-rotation the old generation still answers.
        assert!(client.query(b"pollution").expect("query"));
        client.insert_batch(&members).expect("replay");
        for shard in 0..2 {
            assert!(client.rotate_complete(shard).expect("complete"));
            assert!(!client.rotate_complete(shard).expect("nothing left"));
        }
        assert!(client.query_batch(&members).expect("mquery").iter().all(|&a| a));
        assert!(!client.query(b"pollution").expect("query"), "unreplayed pollution is gone");

        handle.shutdown();
    }
}

#[test]
fn pipelined_requests_answer_in_order() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let items: Vec<String> = (0..50).map(|i| format!("pipeline-{i}")).collect();
        client.insert_batch(&items).expect("minsert");

        // Queue 100 single queries (alternating hit/miss) without reading.
        for (i, item) in items.iter().enumerate() {
            client.send(&Command::Query(item.as_bytes())).expect("send hit");
            client.send(&Command::Query(format!("absent-{i}").as_bytes())).expect("send miss");
        }
        for i in 0..50 {
            assert_eq!(client.recv().expect("hit"), Response::Found(true), "{backend} hit {i}");
            assert_eq!(client.recv().expect("miss"), Response::Found(false), "{backend} miss {i}");
        }
        handle.shutdown();
    }
}

#[test]
fn concurrent_clients_share_the_store() {
    for backend in backends() {
        let (handle, store) = spawn_on(backend, true, 4);
        let addr = handle.local_addr();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let items: Vec<String> =
                        (0..100).map(|i| format!("worker-{worker}-{i}")).collect();
                    client.insert_batch(&items).expect("minsert");
                    assert!(client.query_batch(&items).expect("mquery").iter().all(|&a| a));
                });
            }
        });
        assert_eq!(store.stats().total_inserted, 400);
        assert_eq!(handle.requests_served(), 8);
        handle.shutdown();
    }
}

#[test]
fn semantic_errors_keep_the_connection_alive() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        match client.rotate_begin(99) {
            Err(ClientError::Remote(message)) => assert!(message.contains("out of range")),
            other => panic!("expected a remote error, got {other:?} ({backend})"),
        }
        client.ping().expect("connection still serves");
        handle.shutdown();
    }
}

#[test]
fn protocol_violations_get_an_error_and_a_close() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        // A frame with a bad version byte.
        stream.write_all(&[2u8, 0, 0, 0, 99, 0x01]).expect("write");
        stream.flush().expect("flush");

        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("server closes after the error frame");
        let (start, end) = evilbloom_server::wire::frame_bounds(&raw, 0, 1 << 20)
            .expect("cap")
            .expect("one complete error frame");
        match Response::decode(&raw[start..end]).expect("decodes") {
            Response::Error(message) => assert!(message.contains("version"), "{message}"),
            other => panic!("expected ERROR, got {other:?} ({backend})"),
        }
        assert_eq!(end, raw.len(), "nothing after the error frame ({backend})");
        handle.shutdown();
    }
}

#[test]
fn oversized_frames_are_refused_without_allocation() {
    for backend in backends() {
        let store = Arc::new(
            BloomStore::builder()
                .shards(2)
                .capacity(1_000)
                .target_fpp(0.01)
                .hardened()
                .seed(1)
                .build(),
        );
        let config = ServerConfig { max_frame_bytes: 1024, ..ServerConfig::with_backend(backend) };
        let handle = Server::spawn(store, "127.0.0.1:0", config).expect("bind");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        // Claim a 1 GiB payload; send only the prefix.
        stream.write_all(&(1u32 << 30).to_le_bytes()).expect("write");
        stream.flush().expect("flush");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("server answers and closes");
        let (start, end) = evilbloom_server::wire::frame_bounds(&raw, 0, 1 << 20)
            .expect("cap")
            .expect("error frame");
        match Response::decode(&raw[start..end]).expect("decodes") {
            Response::Error(message) => assert!(message.contains("exceeds"), "{message}"),
            other => panic!("expected ERROR, got {other:?} ({backend})"),
        }
        handle.shutdown();
    }
}

#[test]
fn shutdown_is_graceful_and_bounded() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let addr = handle.local_addr();
        // An idle connection is open when shutdown starts.
        let mut client = Client::connect(addr).expect("connect");
        client.ping().expect("ping");

        let started = std::time::Instant::now();
        handle.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "{backend} shutdown took {:?} with an idle connection open",
            started.elapsed()
        );

        // The idle connection was closed by the server side.
        assert!(client.ping().is_err(), "server should be gone ({backend})");
        // New connections are refused or immediately closed.
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut late) => {
                assert!(late.ping().is_err(), "no thread should serve a late client ({backend})")
            }
        }
    }
}

#[test]
fn oversized_commands_are_rejected_client_side_before_sending() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        client.set_max_frame_bytes(256);
        let big = vec![0xAAu8; 1024];
        let err = client.send(&Command::Insert(&big)).expect_err("must reject locally");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Regression: the error reports the *true* payload length (1026 =
        // version + opcode + item), not a value clamped to `u32::MAX`.
        assert!(err.to_string().contains("1026"), "true length missing: {err}");
        // The connection was never poisoned: normal traffic still works.
        client.set_max_frame_bytes(evilbloom_server::DEFAULT_MAX_FRAME_BYTES);
        client.ping().expect("connection unaffected");
        handle.shutdown();
    }
}

#[test]
fn unhardened_server_reports_its_posture() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, false, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        assert!(!client.stats().expect("stats").hardened);
        handle.shutdown();
    }
}

/// A peer delivering its bytes one at a time must be reassembled correctly:
/// every readiness event hands the state machine a partial frame, and no
/// response may be emitted before the frame completes. (This is the
/// edge-triggering/partial-read regression test for the reactor; it runs on
/// the threaded backend too, whose accumulator follows the same contract.)
#[test]
fn byte_at_a_time_partial_frame_delivery() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // Three pipelined frames, delivered byte by byte.
        let mut bytes = Vec::new();
        Command::Ping.encode(&mut bytes).expect("encodes");
        Command::Insert(b"https://drip.example/slow").encode(&mut bytes).expect("encodes");
        Command::QueryBatch(vec![b"https://drip.example/slow".as_slice(), b"absent".as_slice()])
            .encode(&mut bytes)
            .expect("encodes");
        for &byte in &bytes {
            stream.write_all(&[byte]).expect("write one byte");
            stream.flush().expect("flush");
        }

        let mut payload = Vec::new();
        let mut read_response = || {
            assert!(
                evilbloom_server::wire::read_frame(&mut stream, &mut payload, 1 << 20)
                    .expect("read frame"),
                "connection stays open ({backend})"
            );
            Response::decode(&payload).expect("decodes")
        };
        assert_eq!(read_response(), Response::Pong, "{backend}");
        match read_response() {
            Response::Inserted { fresh_bits } => assert!(fresh_bits > 0, "{backend}"),
            other => panic!("expected INSERTED, got {other:?} ({backend})"),
        }
        assert_eq!(read_response(), Response::BatchFound(vec![true, false]), "{backend}");
        handle.shutdown();
    }
}

/// The C10k claim, scaled to a unit test: the async backend holds ≥1000
/// concurrent loopback connections — every one of them *served*, not just
/// accepted — on a handful of reactor threads, and stays responsive while
/// they are all open. (The threaded backend would need 1000 dedicated
/// worker threads for the same feat; that is the gap the reactor closes.)
#[test]
fn async_backend_sustains_1000_concurrent_connections() {
    if !Backend::Async.is_supported() {
        eprintln!("skipping: async backend unsupported on this platform");
        return;
    }
    const CONNECTIONS: usize = 1000;
    if let Some(budget) = evilbloom_server::loopback_connection_budget() {
        if budget < CONNECTIONS as u64 {
            eprintln!("skipping: fd budget {budget} too low for {CONNECTIONS} connections");
            return;
        }
    }

    let (handle, store) = spawn_on(Backend::Async, true, 4);
    let addr = handle.local_addr();

    let mut clients: Vec<Client> = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        match Client::connect(addr) {
            Ok(client) => clients.push(client),
            Err(e) => panic!("connect {i} failed: {e}"),
        }
    }

    // Every connection is served, not merely accepted: one request each.
    for (i, client) in clients.iter_mut().enumerate() {
        client.ping().unwrap_or_else(|e| panic!("ping on connection {i} failed: {e}"));
    }

    // With all 1000 still open, the server keeps doing real work.
    let items: Vec<String> = (0..100).map(|i| format!("c10k-{i}")).collect();
    clients[0].insert_batch(&items).expect("insert under load");
    let answers = clients[CONNECTIONS - 1].query_batch(&items).expect("query under load");
    assert!(answers.iter().all(|&a| a), "no false negatives under 1000-connection load");
    assert_eq!(store.stats().total_inserted, 100);
    assert!(handle.requests_served() >= CONNECTIONS as u64 + 2);

    drop(clients);
    handle.shutdown();
}

/// The tentpole acceptance path: populate an unhardened persistent store
/// over TCP, `SNAPSHOT` it remotely, keep inserting (those land only in the
/// WAL), shut the server down, recover the store from disk, serve it again
/// — and every query must answer bit-for-bit identically over the wire,
/// false positives included.
#[test]
fn restarted_server_answers_bit_for_bit_identically() {
    for backend in backends() {
        let tmp = TempDir::new("restart");
        let persist = PersistConfig::new(&tmp.0);

        let mut store = BloomStore::builder()
            .shards(4)
            .capacity(4_000)
            .target_fpp(0.01)
            .unhardened()
            .seed(7)
            .build();
        store.enable_persistence(&persist).expect("enable persistence");
        let handle =
            Server::spawn(Arc::new(store), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("bind");
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let before_snapshot: Vec<String> = (0..600).map(|i| format!("pre-snap-{i}")).collect();
        client.insert_batch(&before_snapshot).expect("minsert");
        let info = client.snapshot().expect("remote snapshot");
        assert!(info.seq > 0 && info.wal_seq > 0 && info.bytes > 0);
        assert_eq!(info.shards, 4);

        // These inserts exist only in the write-ahead log.
        let after_snapshot: Vec<String> = (0..400).map(|i| format!("post-snap-{i}")).collect();
        client.insert_batch(&after_snapshot).expect("minsert");

        // Probe set: every member plus absent items (some of which may be
        // false positives — recovery must reproduce those too).
        let mut probes: Vec<String> = Vec::new();
        probes.extend(before_snapshot.iter().cloned());
        probes.extend(after_snapshot.iter().cloned());
        probes.extend((0..2_000).map(|i| format!("absent-{i}")));
        let original = client.query_batch(&probes).expect("mquery");
        assert!(original[..1_000].iter().all(|&a| a), "members must all answer true");

        drop(client);
        handle.shutdown();

        let (recovered, report): (BloomStore, _) = BloomStore::recover(&persist).expect("recover");
        assert_eq!(report.replayed_inserts, 400, "WAL tail replays ({backend})");
        let handle =
            Server::spawn(Arc::new(recovered), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("rebind");
        let mut client = Client::connect(handle.local_addr()).expect("reconnect");
        let replayed = client.query_batch(&probes).expect("mquery after restart");
        assert_eq!(replayed, original, "bit-for-bit equivalence over TCP ({backend})");
        handle.shutdown();
    }
}

/// `SNAPSHOT` against a server whose store has no persistence enabled is a
/// typed remote error, and the connection survives it.
#[test]
fn snapshot_without_persistence_is_a_remote_error() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, false, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        match client.snapshot() {
            Err(ClientError::Remote(message)) => {
                assert!(message.contains("persistence"), "{message}")
            }
            other => panic!("expected a remote error, got {other:?} ({backend})"),
        }
        client.ping().expect("connection still serves");
        handle.shutdown();
    }
}

/// The pooled variant drives the same opcode through `ClientPool`.
#[test]
fn pooled_snapshot_round_trips() {
    for backend in backends() {
        let tmp = TempDir::new("pooled-snap");
        let persist = PersistConfig::new(&tmp.0);
        let mut store = BloomStore::builder()
            .shards(2)
            .capacity(2_000)
            .target_fpp(0.01)
            .unhardened()
            .seed(3)
            .build();
        store.enable_persistence(&persist).expect("enable persistence");
        let handle =
            Server::spawn(Arc::new(store), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("bind");

        let mut pool = ClientPool::connect(handle.local_addr(), 2).expect("pool");
        let items: Vec<String> = (0..300).map(|i| format!("pooled-{i}")).collect();
        pool.minsert_pooled(&items, 64).expect("pooled insert");
        let info = pool.snapshot().expect("pooled snapshot");
        assert!(info.seq > 0, "{backend}");
        assert!(pool.mquery_pooled(&items, 64).expect("pooled query").iter().all(|&a| a));
        handle.shutdown();
    }
}

/// A peer that pipelines a burst, half-closes its write side, and then
/// reads must still receive every response: EOF with responses pending (or
/// executing) takes the flush-then-close path on both backends instead of
/// dropping undelivered bytes.
#[test]
fn half_close_still_delivers_pending_responses() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");

        const BURST: usize = 200;
        let mut bytes = Vec::new();
        Command::Insert(b"half-close-item").encode(&mut bytes).expect("encodes");
        for _ in 0..BURST {
            Command::Query(b"half-close-item").encode(&mut bytes).expect("encodes");
        }
        stream.write_all(&bytes).expect("write burst");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");

        let mut payload = Vec::new();
        assert!(
            evilbloom_server::wire::read_frame(&mut stream, &mut payload, 1 << 20)
                .expect("read INSERTED"),
            "{backend}"
        );
        for i in 0..BURST {
            assert!(
                evilbloom_server::wire::read_frame(&mut stream, &mut payload, 1 << 20)
                    .unwrap_or_else(|e| panic!("{backend}: response {i} after half-close: {e}")),
                "{backend}: connection closed before response {i}"
            );
            assert_eq!(
                Response::decode(&payload).expect("decodes"),
                Response::Found(true),
                "{backend} response {i}"
            );
        }
        // After the last response the server closes cleanly.
        assert!(
            !evilbloom_server::wire::read_frame(&mut stream, &mut payload, 1 << 20)
                .expect("clean EOF"),
            "{backend}: nothing after the final response"
        );
        handle.shutdown();
    }
}

#[test]
fn metrics_scrape_round_trips_with_every_layer_present() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // Generate traffic across opcodes so counters move before scraping.
        let members: Vec<String> = (0..100).map(|i| format!("metrics-{i}")).collect();
        client.insert_batch(&members).expect("minsert");
        client.query_batch(&members).expect("mquery");
        client.stats().expect("stats");

        // Scrape twice: a scrape's own request is counted after it renders,
        // so the first exposition shows op="metrics" at 0 and the second at
        // 1 — the counter reflects requests *completed* before the scrape.
        let first = client.metrics().expect("metrics");
        assert!(
            first.contains(r#"evilbloom_server_requests_total{op="metrics"} 0"#),
            "{backend}:\n{first}"
        );
        let text = client.metrics().expect("metrics");
        // At least one metric family from every instrumented layer renders
        // on BOTH backends — reactor and persist families at zero where the
        // configuration leaves them idle.
        for family in [
            "evilbloom_server_requests_total",        // server
            "evilbloom_server_request_latency_ns",    // server histograms
            "evilbloom_reactor_wakeups_total",        // reactor
            "evilbloom_bufferpool_hits_total",        // buffer pool
            "evilbloom_store_inserts_total",          // store
            "evilbloom_store_bits_per_insert_recent", // drift gauge
            "evilbloom_persist_wal_append_ns",        // persist
        ] {
            assert!(text.contains(family), "{backend}: missing {family} in:\n{text}");
        }

        // The exposition is structurally parseable: every non-comment line
        // is `name{labels} value` with a numeric value.
        let mut samples = 0usize;
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("{backend}: unparseable line {line:?}"));
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "{backend}: non-numeric sample value in {line:?}"
            );
            samples += 1;
        }
        assert!(samples > 20, "{backend}: suspiciously few samples ({samples})");

        // The traffic above is visible in the scrape.
        assert!(
            text.contains(r#"evilbloom_server_requests_total{op="minsert"} 1"#),
            "{backend}:\n{text}"
        );
        assert!(
            text.contains(r#"evilbloom_server_requests_total{op="metrics"} 1"#),
            "{backend}:\n{text}"
        );
        assert!(text.contains("evilbloom_store_inserts_total 100"), "{backend}:\n{text}");

        handle.shutdown();
    }
}

#[test]
fn stats_report_generation_and_uptime() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 2);
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let before = client.stats().expect("stats");
        assert_eq!(before.generation, 0, "{backend}: fresh store starts at generation 0");

        // Rotating a shard must be visible in the reported generation.
        let generation = client.rotate_begin(0).expect("rotate").expect("fresh rotation");
        assert!(generation > 0, "{backend}");
        let after = client.stats().expect("stats");
        assert_eq!(after.generation, generation, "{backend}");
        // Uptime only moves with wall time, but it must at least decode
        // (old servers' frames decode it as 0; see the wire unit tests).
        assert!(after.uptime_secs < 3600, "{backend}: implausible uptime");

        handle.shutdown();
    }
}

#[test]
fn pooled_metrics_scrape_round_trips() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut pool = ClientPool::connect(handle.local_addr(), 2).expect("pool");
        let text = pool.metrics().expect("pooled metrics");
        assert!(text.contains("evilbloom_server_uptime_seconds"), "{backend}:\n{text}");
        handle.shutdown();
    }
}

/// `DELETE` against a family that cannot delete is a *typed* refusal
/// (`UNSUPPORTED`, surfacing as [`ClientError::Unsupported`]), not a
/// protocol error — and the connection keeps serving afterwards.
#[test]
fn delete_on_a_plain_bloom_server_is_typed_unsupported() {
    for backend in backends() {
        let (handle, _store) = spawn_on(backend, true, 4);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        client.insert(b"undeletable").expect("insert");
        match client.delete(b"undeletable") {
            Err(ClientError::Unsupported(message)) => {
                assert!(message.contains("bloom") && message.contains("remove"), "{message}")
            }
            other => panic!("expected UNSUPPORTED, got {other:?} ({backend})"),
        }
        match client.delete_batch(&["a", "b"]) {
            Err(ClientError::Unsupported(_)) => {}
            other => panic!("expected UNSUPPORTED, got {other:?} ({backend})"),
        }
        // The refusal changed nothing and poisoned nothing.
        assert!(client.query(b"undeletable").expect("query"));
        client.ping().expect("connection still serves");
        handle.shutdown();
    }
}

/// The counting family end-to-end: populate over TCP, evict with `DELETE`
/// and `MDELETE`, snapshot remotely, keep mutating (WAL-only tail), restart
/// — and the recovered server answers bit-for-bit identically, deletions
/// and false positives included.
#[test]
fn counting_store_serves_deletes_and_recovers_over_tcp() {
    for backend in backends() {
        let tmp = TempDir::new("counting");
        let persist = PersistConfig::new(&tmp.0);
        let mut store = BloomStore::builder()
            .shards(4)
            .capacity(4_000)
            .target_fpp(0.01)
            .unhardened()
            .seed(9)
            .counting(4)
            .build();
        store.enable_persistence(&persist).expect("enable persistence");
        let handle =
            Server::spawn(Arc::new(store), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("bind");
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        assert_eq!(client.stats().expect("stats").backend, BackendKind::Counting, "{backend}");

        let members: Vec<String> = (0..500).map(|i| format!("member-{i}")).collect();
        let transient: Vec<String> = (0..200).map(|i| format!("transient-{i}")).collect();
        client.insert_batch(&members).expect("minsert members");
        client.insert_batch(&transient).expect("minsert transient");

        // Scalar and batch deletion both report the items as present.
        assert!(client.delete(transient[0].as_bytes()).expect("delete"), "{backend}");
        let answers = client.delete_batch(&transient[1..]).expect("mdelete");
        assert!(answers.iter().all(|&a| a), "present items evict as present ({backend})");
        assert!(
            client.query_batch(&members).expect("mquery").iter().all(|&a| a),
            "members survive the eviction ({backend})"
        );

        let info = client.snapshot().expect("remote snapshot");
        assert!(info.seq > 0 && info.bytes > 0, "{backend}");

        // This tail lives only in the WAL: inserts and one more delete.
        let post: Vec<String> = (0..100).map(|i| format!("post-{i}")).collect();
        client.insert_batch(&post).expect("minsert post-snapshot");
        assert!(client.delete(post[0].as_bytes()).expect("delete post-snapshot"), "{backend}");

        let mut probes: Vec<String> = Vec::new();
        probes.extend(members.iter().cloned());
        probes.extend(transient.iter().cloned());
        probes.extend(post.iter().cloned());
        probes.extend((0..2_000).map(|i| format!("absent-{i}")));
        let original = client.query_batch(&probes).expect("mquery");

        drop(client);
        handle.shutdown();

        let (recovered, report): (BloomStore<ConcurrentCountingFilter>, _) =
            BloomStore::recover(&persist).expect("recover counting");
        assert_eq!(report.replayed_inserts, 100, "{backend}");
        assert_eq!(report.replayed_removes, 1, "WAL delete tail replays ({backend})");
        let handle =
            Server::spawn(Arc::new(recovered), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("rebind");
        let mut client = Client::connect(handle.local_addr()).expect("reconnect");
        let replayed = client.query_batch(&probes).expect("mquery after restart");
        assert_eq!(replayed, original, "bit-for-bit equivalence over TCP ({backend})");
        handle.shutdown();
    }
}

/// The scalable family end-to-end: a store sized for 500 items absorbs
/// 3 000 over TCP by growing levels, never false-negatives, reports its
/// family in `STATS`, and refuses `DELETE` with the typed error.
#[test]
fn scalable_store_serves_and_grows_over_tcp() {
    for backend in backends() {
        let store = Arc::new(
            BloomStore::builder()
                .shards(2)
                .capacity(500)
                .target_fpp(0.01)
                .unhardened()
                .seed(5)
                .scalable(0.9)
                .build(),
        );
        let handle =
            Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
                .expect("bind");
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let items: Vec<String> = (0..3_000).map(|i| format!("grow-{backend}-{i}")).collect();
        client.insert_batch(&items).expect("minsert past capacity");
        assert!(
            client.query_batch(&items).expect("mquery").iter().all(|&a| a),
            "no false negatives after growth ({backend})"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.backend, BackendKind::Scalable, "{backend}");
        assert_eq!(stats.total_inserted, 3_000, "{backend}");
        match client.delete(items[0].as_bytes()) {
            Err(ClientError::Unsupported(message)) => {
                assert!(message.contains("scalable"), "{message}")
            }
            other => panic!("expected UNSUPPORTED, got {other:?} ({backend})"),
        }
        handle.shutdown();
    }
}

/// `ServerConfig::expect_store_backend` is a deployment assertion: spawning
/// with a mismatched family is refused at bind time, a matching one binds.
#[test]
fn backend_selector_refuses_a_mismatched_store() {
    let store =
        Arc::new(BloomStore::builder().shards(2).capacity(1_000).target_fpp(0.01).seed(1).build());
    let config = ServerConfig::default().expect_store_backend(BackendKind::Counting);
    let err = match Server::spawn(Arc::clone(&store), "127.0.0.1:0", config) {
        Err(err) => err,
        Ok(_) => panic!("a mismatched backend selector must refuse to spawn"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("counting") && err.to_string().contains("bloom"), "{err}");

    let config = ServerConfig::default().expect_store_backend(BackendKind::Bloom);
    let handle = Server::spawn(store, "127.0.0.1:0", config).expect("matching selector binds");
    handle.shutdown();
}

/// The served family is visible to a metrics scraper as the
/// `evilbloom_store_backend_info` info metric.
#[test]
fn metrics_expose_the_served_family() {
    let store = Arc::new(
        BloomStore::builder()
            .shards(2)
            .capacity(1_000)
            .target_fpp(0.01)
            .seed(2)
            .counting(4)
            .build(),
    );
    let handle = Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let text = client.metrics().expect("metrics");
    assert!(
        text.contains(r#"evilbloom_store_backend_info{backend="counting"} 1"#),
        "family info metric missing in:\n{text}"
    );
    handle.shutdown();
}

/// A `TRACE` scrape on either backend surfaces the forensic layer
/// end-to-end: conn-open and batch events in the flight recorder, the
/// inserting connection in the suspect ranking (with its fresh-bits EWMA),
/// slow-request events under a zero threshold, and a deterministic text
/// rendering.
#[test]
fn trace_scrape_surfaces_events_and_suspects() {
    for backend in backends() {
        let store = Arc::new(
            BloomStore::builder().shards(4).capacity(4_000).target_fpp(0.01).seed(42).build(),
        );
        // A zero threshold classifies every request as slow, so the test
        // exercises the slow-request path deterministically.
        let mut config = ServerConfig::with_backend(backend);
        config.slow_request_threshold = Duration::ZERO;
        let handle = Server::spawn(store, "127.0.0.1:0", config).expect("bind loopback");

        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let members: Vec<String> = (0..100).map(|i| format!("trace-{i}")).collect();
        let outcome = client.insert_batch(&members).expect("minsert");
        assert!(outcome.fresh_bits > 0);
        client.query_batch(&members).expect("mquery");

        let trace = client.trace().expect("trace");
        assert!(trace.recorded > 0, "{backend}: recorder saw nothing");
        let events: Vec<_> = trace.events.iter().map(|e| &e.event).collect();
        assert!(
            events.iter().any(|e| matches!(e, evilbloom_server::TraceEvent::ConnOpened { .. })),
            "{backend}: no conn-open event in {events:?}"
        );
        let insert_event = events
            .iter()
            .find_map(|e| match e {
                evilbloom_server::TraceEvent::BatchExecuted {
                    conn_id, items, fresh_bits, ..
                } if *fresh_bits > 0 => Some((*conn_id, *items, *fresh_bits)),
                _ => None,
            })
            .expect("a batch event carrying fresh bits");
        assert_eq!(insert_event.1, 100, "{backend}");
        assert_eq!(insert_event.2, outcome.fresh_bits, "{backend}");
        assert!(
            events.iter().any(|e| matches!(e, evilbloom_server::TraceEvent::SlowRequest { .. })),
            "{backend}: zero threshold produced no slow-request event"
        );
        // Sequence numbers come back oldest-first and strictly increasing.
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq), "{backend}");

        // The inserting connection tops the (one-row) suspect ranking, its
        // EWMA seeded at the observed fresh-bits-per-item rate.
        assert_eq!(trace.suspects.len(), 1, "{backend}: {:?}", trace.suspects);
        assert_eq!(trace.suspects[0].conn_id, insert_event.0, "{backend}");
        assert_eq!(trace.suspects[0].items, 100, "{backend}");
        let expected_rate = outcome.fresh_bits as f64 / 100.0;
        assert!(
            (trace.suspects[0].ewma_bits_per_item - expected_rate).abs() < 1e-9,
            "{backend}: ewma {} != seeded rate {expected_rate}",
            trace.suspects[0].ewma_bits_per_item
        );

        // The scrape itself samples the store, so the drift timeline has at
        // least one point covering the inserts above.
        assert!(!trace.drift.is_empty(), "{backend}: empty drift timeline");
        assert_eq!(trace.drift.last().unwrap().inserts, 100, "{backend}");

        let text = trace.render();
        assert!(text.contains("== evilbloom trace:"), "{text}");
        assert!(text.contains("slow-request"), "{text}");
        assert!(text.contains("-- suspects"), "{text}");

        drop(client);
        handle.shutdown();
    }
}

/// `TRACE` is also reachable through a pool and the `RemoteStore` trait.
#[test]
fn pooled_trace_scrape_round_trips() {
    use evilbloom_server::RemoteStore;

    let (handle, _store) = spawn_on(Backend::Threaded, true, 2);
    let mut pool = ClientPool::connect(handle.local_addr(), 2).expect("pool");
    pool.minsert(&["pooled-a", "pooled-b"]).expect("minsert");
    let trace = RemoteStore::trace(&mut pool).expect("trace");
    assert!(trace.recorded > 0);
    assert!(trace.events.iter().any(|e| {
        matches!(e.event, evilbloom_server::TraceEvent::BatchExecuted { fresh_bits, .. } if fresh_bits > 0)
    }));
    drop(pool);
    handle.shutdown();
}

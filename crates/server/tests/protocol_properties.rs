//! Seeded property tests for the wire protocol: encode→decode identity over
//! randomly generated command/response variants, and rejection — never a
//! panic — of truncated and corrupted frames.

use evilbloom_server::wire::{frame_bounds, DEFAULT_MAX_FRAME_BYTES};
use evilbloom_server::{
    Command, Response, TraceEvent, WireDriftPoint, WireShardStats, WireSnapshot, WireStats,
    WireSuspect, WireTrace, WireTraceEvent,
};
use evilbloom_store::BackendKind;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Random byte strings, biased toward URL-ish lengths but including empty.
fn random_item(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0usize..64);
    (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect()
}

fn random_items(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let count = rng.gen_range(0usize..20);
    (0..count).map(|_| random_item(rng)).collect()
}

/// Draws one command over owned storage (the borrowed `Command` views into
/// it).
enum OwnedCommand {
    Ping,
    Insert(Vec<u8>),
    Query(Vec<u8>),
    InsertBatch(Vec<Vec<u8>>),
    QueryBatch(Vec<Vec<u8>>),
    Delete(Vec<u8>),
    DeleteBatch(Vec<Vec<u8>>),
    Stats,
    RotateBegin(u32),
    RotateComplete(u32),
    Snapshot,
    Metrics,
    Trace,
}

impl OwnedCommand {
    fn random(rng: &mut StdRng) -> Self {
        match rng.gen_range(0u32..13) {
            0 => OwnedCommand::Ping,
            1 => OwnedCommand::Insert(random_item(rng)),
            2 => OwnedCommand::Query(random_item(rng)),
            3 => OwnedCommand::InsertBatch(random_items(rng)),
            4 => OwnedCommand::QueryBatch(random_items(rng)),
            5 => OwnedCommand::Stats,
            6 => OwnedCommand::RotateBegin(rng.gen_range(0u64..1 << 32) as u32),
            7 => OwnedCommand::Snapshot,
            8 => OwnedCommand::Metrics,
            9 => OwnedCommand::Delete(random_item(rng)),
            10 => OwnedCommand::DeleteBatch(random_items(rng)),
            11 => OwnedCommand::Trace,
            _ => OwnedCommand::RotateComplete(rng.gen_range(0u64..1 << 32) as u32),
        }
    }

    fn borrow(&self) -> Command<'_> {
        match self {
            OwnedCommand::Ping => Command::Ping,
            OwnedCommand::Insert(item) => Command::Insert(item),
            OwnedCommand::Query(item) => Command::Query(item),
            OwnedCommand::InsertBatch(items) => {
                Command::InsertBatch(items.iter().map(Vec::as_slice).collect())
            }
            OwnedCommand::QueryBatch(items) => {
                Command::QueryBatch(items.iter().map(Vec::as_slice).collect())
            }
            OwnedCommand::Delete(item) => Command::Delete(item),
            OwnedCommand::DeleteBatch(items) => {
                Command::DeleteBatch(items.iter().map(Vec::as_slice).collect())
            }
            OwnedCommand::Stats => Command::Stats,
            OwnedCommand::RotateBegin(shard) => Command::RotateBegin { shard: *shard },
            OwnedCommand::RotateComplete(shard) => Command::RotateComplete { shard: *shard },
            OwnedCommand::Snapshot => Command::Snapshot,
            OwnedCommand::Metrics => Command::Metrics,
            OwnedCommand::Trace => Command::Trace,
        }
    }
}

fn random_shard_stats(rng: &mut StdRng) -> WireShardStats {
    WireShardStats {
        generation: rng.next_u64(),
        rotating: rng.gen_range(0u32..2) == 1,
        m: rng.next_u64(),
        k: rng.gen_range(0u64..1 << 32) as u32,
        inserted: rng.next_u64(),
        weight: rng.next_u64(),
        fill: rng.gen_range(0.0f64..1.0),
        estimated_fpp: rng.gen_range(0.0f64..1.0),
        pollution_alarm: rng.gen_range(0u32..2) == 1,
    }
}

fn random_backend(rng: &mut StdRng) -> BackendKind {
    match rng.gen_range(0u32..3) {
        0 => BackendKind::Bloom,
        1 => BackendKind::Counting,
        _ => BackendKind::Scalable,
    }
}

fn random_trace_event(rng: &mut StdRng) -> TraceEvent {
    match rng.gen_range(0u32..9) {
        0 => TraceEvent::ConnOpened { conn_id: rng.next_u64() },
        1 => TraceEvent::ConnClosed { conn_id: rng.next_u64() },
        2 => TraceEvent::BatchExecuted {
            conn_id: rng.next_u64(),
            opcode: rng.gen_range(0u64..256) as u8,
            items: rng.next_u64(),
            fresh_bits: rng.next_u64(),
            latency_ns: rng.next_u64(),
        },
        3 => TraceEvent::AlarmTripped { shard: rng.next_u64() },
        4 => TraceEvent::RotationBegun { shard: rng.next_u64(), generation: rng.next_u64() },
        5 => TraceEvent::RotationCompleted { shard: rng.next_u64() },
        6 => TraceEvent::WalFsyncStall { latency_ns: rng.next_u64() },
        7 => TraceEvent::SnapshotTaken { seq: rng.next_u64(), bytes: rng.next_u64() },
        _ => TraceEvent::SlowRequest {
            conn_id: rng.next_u64(),
            opcode: rng.gen_range(0u64..256) as u8,
            latency_ns: rng.next_u64(),
        },
    }
}

fn random_trace(rng: &mut StdRng) -> WireTrace {
    let events = rng.gen_range(0usize..12);
    let suspects = rng.gen_range(0usize..6);
    let drift = rng.gen_range(0usize..10);
    WireTrace {
        recorded: rng.next_u64(),
        dropped: rng.next_u64(),
        overwritten: rng.next_u64(),
        events: (0..events)
            .map(|_| WireTraceEvent {
                seq: rng.next_u64(),
                ts_ms: rng.next_u64(),
                event: random_trace_event(rng),
            })
            .collect(),
        suspects: (0..suspects)
            .map(|_| WireSuspect {
                conn_id: rng.next_u64(),
                ewma_bits_per_item: rng.gen_range(0.0f64..16.0),
                batches: rng.next_u64(),
                items: rng.next_u64(),
                fresh_bits: rng.next_u64(),
            })
            .collect(),
        drift: (0..drift)
            .map(|_| WireDriftPoint { inserts: rng.next_u64(), fresh_bits: rng.next_u64() })
            .collect(),
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0u32..17) {
        0 => Response::Pong,
        1 => Response::Inserted { fresh_bits: rng.gen_range(0u64..1 << 32) as u32 },
        2 => Response::Found(rng.gen_range(0u32..2) == 1),
        3 => Response::BatchInserted {
            items: rng.gen_range(0u64..1 << 32) as u32,
            fresh_bits: rng.next_u64(),
        },
        4 => {
            let count = rng.gen_range(0usize..40);
            Response::BatchFound((0..count).map(|_| rng.gen_range(0u32..2) == 1).collect())
        }
        5 => {
            let shards = rng.gen_range(0usize..9);
            Response::Stats(WireStats {
                hardened: rng.gen_range(0u32..2) == 1,
                total_inserted: rng.next_u64(),
                mean_fill: rng.gen_range(0.0f64..1.0),
                max_estimated_fpp: rng.gen_range(0.0f64..1.0),
                alarms: rng.gen_range(0u64..1 << 32) as u32,
                generation: rng.next_u64(),
                uptime_secs: rng.next_u64(),
                backend: random_backend(rng),
                degraded: rng.gen_range(0u32..2) == 1,
                shards: (0..shards).map(|_| random_shard_stats(rng)).collect(),
            })
        }
        6 => {
            Response::Rotated { generation: (rng.gen_range(0u32..2) == 1).then(|| rng.next_u64()) }
        }
        7 => Response::RotationCompleted(rng.gen_range(0u32..2) == 1),
        8 => Response::Snapshotted(WireSnapshot {
            seq: rng.next_u64(),
            wal_seq: rng.next_u64(),
            shards: rng.gen_range(0u64..1 << 32) as u32,
            bytes: rng.next_u64(),
        }),
        9 => {
            let len = rng.gen_range(0usize..160);
            let text: String = (0..len).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Response::Metrics(text)
        }
        10 => Response::Deleted { was_present: rng.gen_range(0u32..2) == 1 },
        11 => {
            let count = rng.gen_range(0usize..40);
            Response::BatchDeleted((0..count).map(|_| rng.gen_range(0u32..2) == 1).collect())
        }
        12 => {
            let len = rng.gen_range(0usize..48);
            let message: String = (0..len).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Response::Unsupported(message)
        }
        13 => Response::Trace(random_trace(rng)),
        14 => Response::Busy { retry_after_ms: rng.gen_range(0u64..1 << 32) as u32 },
        15 => {
            let len = rng.gen_range(0usize..48);
            let reason: String = (0..len).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Response::Degraded(reason)
        }
        _ => {
            let len = rng.gen_range(0usize..48);
            let message: String = (0..len).map(|_| rng.gen_range(b' '..b'~') as char).collect();
            Response::Error(message)
        }
    }
}

fn payload(frame: &[u8]) -> &[u8] {
    let (start, end) = frame_bounds(frame, 0, DEFAULT_MAX_FRAME_BYTES)
        .expect("own encodings stay under the cap")
        .expect("own encodings are complete frames");
    assert_eq!(end, frame.len(), "encoder emitted trailing garbage");
    &frame[start..end]
}

#[test]
fn commands_encode_decode_identity() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for round in 0..2_000 {
        let owned = OwnedCommand::random(&mut rng);
        let command = owned.borrow();
        let mut frame = Vec::new();
        command.encode(&mut frame).expect("encodes");
        let decoded = Command::decode(payload(&frame))
            .unwrap_or_else(|e| panic!("round {round}: own encoding rejected: {e}"));
        assert_eq!(decoded, command, "round {round}");
    }
}

#[test]
fn responses_encode_decode_identity() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for round in 0..2_000 {
        let response = random_response(&mut rng);
        let mut frame = Vec::new();
        response.encode(&mut frame).expect("encodes");
        let decoded = Response::decode(payload(&frame))
            .unwrap_or_else(|e| panic!("round {round}: own encoding rejected: {e}"));
        assert_eq!(decoded, response, "round {round}");
    }
}

/// Truncating a payload must never panic. When the truncation still decodes
/// (`INSERT`/`QUERY` carry free-form tails, so a shorter tail is a valid
/// shorter command), the result must be self-consistent: re-encoding it
/// reproduces the truncated frame exactly.
#[test]
fn truncated_command_frames_are_rejected_or_self_consistent() {
    let mut rng = StdRng::seed_from_u64(0x7421);
    for _ in 0..300 {
        let owned = OwnedCommand::random(&mut rng);
        let mut frame = Vec::new();
        owned.borrow().encode(&mut frame).expect("encodes");
        let body = payload(&frame).to_vec();
        for cut in 0..body.len() {
            match Command::decode(&body[..cut]) {
                Err(_) => {}
                Ok(reinterpreted) => {
                    let mut reencoded = Vec::new();
                    reinterpreted.encode(&mut reencoded).expect("encodes");
                    assert_eq!(
                        payload(&reencoded),
                        &body[..cut],
                        "truncation at {cut} decoded to something it does not re-encode to"
                    );
                }
            }
        }
    }
}

#[test]
fn truncated_response_frames_are_rejected_or_self_consistent() {
    let mut rng = StdRng::seed_from_u64(0x7422);
    for _ in 0..300 {
        let response = random_response(&mut rng);
        let mut frame = Vec::new();
        response.encode(&mut frame).expect("encodes");
        let body = payload(&frame).to_vec();
        for cut in 0..body.len() {
            match Response::decode(&body[..cut]) {
                Err(_) => {}
                Ok(reinterpreted) => {
                    let mut reencoded = Vec::new();
                    reinterpreted.encode(&mut reencoded).expect("encodes");
                    let re = payload(&reencoded);
                    // One deliberate exception to byte-identity: version
                    // tolerance. A STATS payload cut exactly before its
                    // appended generation/uptime/backend tail (or before
                    // just the backend byte) is an older wire layout, which
                    // decodes with the fields read as 0 / Bloom; likewise a
                    // TRACE payload cut before its suspect and/or drift
                    // tails decodes with empty tables. Re-encoding restores
                    // each missing tail as zeros (Bloom's backend code is
                    // 0; an empty table is a zero count).
                    let compat_tail_restored = re.len() > cut
                        && re[..cut] == body[..cut]
                        && re[cut..].iter().all(|&b| b == 0);
                    assert!(
                        re == &body[..cut] || compat_tail_restored,
                        "truncation at {cut} decoded to something it does not re-encode to"
                    );
                }
            }
        }
    }
}

/// Flipping arbitrary bytes of a valid payload must yield `Ok` or `Err`,
/// never a panic or runaway allocation.
#[test]
fn corrupted_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xBADBEEF);
    for _ in 0..600 {
        let owned = OwnedCommand::random(&mut rng);
        let mut frame = Vec::new();
        owned.borrow().encode(&mut frame).expect("encodes");
        let mut body = payload(&frame).to_vec();
        if body.is_empty() {
            continue;
        }
        for _ in 0..4 {
            let at = rng.gen_range(0usize..body.len());
            body[at] ^= rng.gen_range(1u64..256) as u8;
        }
        drop(Command::decode(&body));
        drop(Response::decode(&body));
    }
}

/// Pure random byte soup must decode (either direction) without panicking.
#[test]
fn random_bytes_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x50FA);
    for _ in 0..2_000 {
        let len = rng.gen_range(0usize..128);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        drop(Command::decode(&soup));
        drop(Response::decode(&soup));
        drop(frame_bounds(&soup, 0, DEFAULT_MAX_FRAME_BYTES));
    }
}

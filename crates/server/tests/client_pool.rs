//! Tests of the client-side connection pool: checkout/checkin reuse,
//! dead-connection replacement after a server restart, and the pipelined
//! pooled batch helpers (on both serving backends).

use std::sync::Arc;

use evilbloom_server::{Backend, ClientPool, Server, ServerConfig, ServerHandle};
use evilbloom_store::BloomStore;

fn spawn(backend: Backend) -> (ServerHandle, Arc<BloomStore>) {
    let store = Arc::new(
        BloomStore::builder()
            .shards(4)
            .capacity(8_000)
            .target_fpp(0.01)
            .hardened()
            .seed(42)
            .build(),
    );
    let handle =
        Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
            .expect("bind loopback");
    (handle, store)
}

fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
}

#[test]
fn checkout_checkin_recycles_connections() {
    let (handle, _store) = spawn(Backend::Threaded);
    let mut pool = ClientPool::connect(handle.local_addr(), 2).expect("pool");
    assert_eq!(pool.idle(), 2);

    let mut a = pool.checkout().expect("checkout");
    let mut b = pool.checkout().expect("checkout");
    a.ping().expect("a serves");
    b.ping().expect("b serves");
    // The pool is empty now; a third checkout dials fresh.
    assert_eq!(pool.idle(), 0);
    let mut c = pool.checkout().expect("fresh dial");
    c.ping().expect("c serves");

    pool.checkin(a);
    pool.checkin(b);
    pool.checkin(c); // beyond the target of 2: dropped, not retained
    assert_eq!(pool.idle(), 2);
    handle.shutdown();
}

#[test]
fn dead_connections_are_replaced_on_validated_checkout() {
    let (handle, store) = spawn(Backend::Threaded);
    let addr = handle.local_addr();
    let mut pool = ClientPool::connect(addr, 2).expect("pool");

    // The server restarts under the pool: every pooled connection is dead.
    handle.shutdown();
    let restarted = Server::spawn(store, addr, ServerConfig::default())
        .expect("rebind the same port after shutdown");

    assert_eq!(pool.idle(), 2, "two stale connections are pooled");
    let mut client = pool.checkout_validated().expect("replacement");
    client.ping().expect("the replacement connection reaches the restarted server");
    // Eager replacement: both dead connections were discarded and the pool
    // refilled itself to target in the same checkout, on top of the fresh
    // connection handed to the caller.
    assert_eq!(pool.idle(), 2, "the pool replaced its dead connections eagerly");
    let health = pool.health();
    assert_eq!(health.dead_dropped, 2, "both stale connections failed the probe");
    assert_eq!(health.replacements, 3, "two eager refills plus the handed-out dial");
    pool.checkin(client); // beyond target: dropped
    assert_eq!(pool.idle(), 2);
    restarted.shutdown();
}

#[test]
fn pooled_batch_helpers_stripe_over_sockets() {
    for backend in backends() {
        let (handle, store) = spawn(backend);
        let mut pool = ClientPool::connect(handle.local_addr(), 3).expect("pool");

        let members: Vec<String> = (0..2_000).map(|i| format!("pooled-{backend}-{i}")).collect();
        let fresh = pool.minsert_pooled(&members, 128).expect("pooled minsert");
        assert!(fresh > 0, "fresh bits set ({backend})");
        assert_eq!(store.stats().total_inserted, 2_000, "{backend}");

        // Probe mix: every member answers true, absent probes almost all
        // false; answers must come back in input order across the lanes.
        let mut probes = members.clone();
        probes.extend((0..500).map(|i| format!("absent-{backend}-{i}")));
        let answers = pool.mquery_pooled(&probes, 128).expect("pooled mquery");
        assert_eq!(answers.len(), probes.len());
        assert!(answers[..2_000].iter().all(|&a| a), "no false negatives ({backend})");
        let false_positives = answers[2_000..].iter().filter(|&&a| a).count();
        assert!(false_positives < 50, "{false_positives} false positives ({backend})");

        // The helpers checked their lanes back in.
        assert_eq!(pool.idle(), 3, "{backend}");
        handle.shutdown();
    }
}

#[test]
fn single_frame_pooled_calls_use_one_lane() {
    let (handle, _store) = spawn(Backend::Threaded);
    let mut pool = ClientPool::connect(handle.local_addr(), 4).expect("pool");
    // Fewer frames than pool target: only one lane is checked out.
    let answers = pool.mquery_pooled(&["a", "b"], 16).expect("single-frame mquery");
    assert_eq!(answers, vec![false, false]);
    assert_eq!(pool.idle(), 4, "lanes were returned");
    handle.shutdown();
}

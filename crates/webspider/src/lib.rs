//! # evilbloom-webspider
//!
//! A Scrapy-like web crawler simulation (Section 5 of the paper).
//!
//! The crawler walks a synthetic web graph, de-duplicating visited URLs with
//! a pluggable store: an exact hash set (Scrapy's default fingerprint list)
//! or a Bloom filter (the memory-saving alternative the paper attacks). Two
//! attacks are modelled end to end:
//!
//! * **pollution / blinding** (Section 5.2): the adversary's start page links
//!   to crafted URLs; once crawled, they pollute the de-duplication filter so
//!   that pages of an honest site are skipped as "already visited";
//! * **ghost pages** (Figures 6 and 7): the adversary hides pages from the
//!   crawler by giving them URLs that are false positives of the filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet, VecDeque};

use evilbloom_attacks::forgery::plan_ghost_pages;
use evilbloom_attacks::pollution::craft_polluting_items;
use evilbloom_filters::{BloomFilter, FilterParams};
use evilbloom_hashes::{SaltedCrypto, Sha512};
use evilbloom_store::ConcurrentDedup;
use evilbloom_urlgen::UrlGenerator;

/// A synthetic web graph: pages and their outgoing links.
#[derive(Debug, Clone, Default)]
pub struct WebGraph {
    links: HashMap<String, Vec<String>>,
}

impl WebGraph {
    /// Creates an empty web graph.
    pub fn new() -> Self {
        WebGraph { links: HashMap::new() }
    }

    /// Adds a page with its outgoing links (creates the page if absent).
    pub fn add_page<S: Into<String>>(&mut self, url: S, links: Vec<String>) {
        self.links.insert(url.into(), links);
    }

    /// Outgoing links of a page (empty if the page has none or is unknown).
    pub fn links_of(&self, url: &str) -> &[String] {
        self.links.get(url).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the graph knows the page.
    pub fn has_page(&self, url: &str) -> bool {
        self.links.contains_key(url)
    }

    /// Total number of pages.
    pub fn page_count(&self) -> usize {
        self.links.len()
    }

    /// Builds an "honest" site: `page_count` pages under `domain`, chained so
    /// a breadth-first crawl starting at the root reaches all of them.
    pub fn honest_site(domain: &str, page_count: usize) -> (Self, String) {
        let mut graph = WebGraph::new();
        let urls: Vec<String> =
            (0..page_count).map(|i| format!("http://{domain}/page/{i}")).collect();
        for (i, url) in urls.iter().enumerate() {
            // Each page links to the next few pages, forming a connected site.
            let links: Vec<String> = urls.iter().skip(i + 1).take(3).cloned().collect();
            graph.add_page(url.clone(), links);
        }
        (graph, urls[0].clone())
    }

    /// Merges another graph into this one (pages of `other` overwrite).
    pub fn merge(&mut self, other: WebGraph) {
        self.links.extend(other.links);
    }
}

/// De-duplication store used by the crawler to mark visited URLs.
pub enum DedupStore {
    /// Exact membership via a hash set of URL fingerprints (Scrapy default:
    /// no false positives, large memory footprint).
    Exact(HashSet<String>),
    /// Bloom-filter membership (small footprint, attackable).
    Bloom(BloomFilter),
    /// Concurrent sharded-store membership (`evilbloom-store`): the same
    /// probabilistic semantics as [`DedupStore::Bloom`], but shareable
    /// across crawler workers and hardened/rotatable underneath.
    Concurrent(ConcurrentDedup),
}

impl DedupStore {
    /// Scrapy-like exact store.
    pub fn exact() -> Self {
        DedupStore::Exact(HashSet::new())
    }

    /// pyBloom-like store: SHA-512-salted indexes with average-case optimal
    /// parameters for `capacity` URLs at false-positive probability `fpp`.
    pub fn bloom(capacity: u64, fpp: f64) -> Self {
        let params = FilterParams::optimal(capacity, fpp);
        DedupStore::Bloom(BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha512))))
    }

    /// Wraps an existing Bloom filter (used to install hardened filters).
    pub fn from_filter(filter: BloomFilter) -> Self {
        DedupStore::Bloom(filter)
    }

    /// Hardened concurrent store: `capacity` URLs at false-positive
    /// probability `fpp` over `shards` keyed shards (keys drawn from
    /// `seed` — deterministic for experiments).
    pub fn concurrent(shards: usize, capacity: u64, fpp: f64, seed: u64) -> Self {
        DedupStore::Concurrent(ConcurrentDedup::hardened_seeded(shards, capacity, fpp, seed))
    }

    /// Wraps an existing concurrent dedup adapter (e.g. one shared with
    /// other crawler workers).
    pub fn from_concurrent(dedup: ConcurrentDedup) -> Self {
        DedupStore::Concurrent(dedup)
    }

    /// Marks a URL as visited.
    pub fn mark_visited(&mut self, url: &str) {
        match self {
            DedupStore::Exact(set) => {
                set.insert(url.to_owned());
            }
            DedupStore::Bloom(filter) => {
                filter.insert(url.as_bytes());
            }
            DedupStore::Concurrent(dedup) => dedup.mark_visited(url.as_bytes()),
        }
    }

    /// Whether a URL is considered already visited.
    pub fn seen(&self, url: &str) -> bool {
        match self {
            DedupStore::Exact(set) => set.contains(url),
            DedupStore::Bloom(filter) => filter.contains(url.as_bytes()),
            DedupStore::Concurrent(dedup) => dedup.seen(url.as_bytes()),
        }
    }

    /// Approximate memory footprint in bytes (the motivation for using Bloom
    /// filters in the first place: Scrapy fingerprints are 77 bytes each).
    pub fn memory_bytes(&self) -> u64 {
        match self {
            DedupStore::Exact(set) => set.len() as u64 * 77,
            DedupStore::Bloom(filter) => filter.params().memory_bytes(),
            DedupStore::Concurrent(dedup) => dedup.memory_bytes(),
        }
    }

    /// Read-only access to the underlying Bloom filter, if any. The
    /// concurrent store deliberately returns `None`: its filters are keyed,
    /// so the offline attack tooling has nothing to inspect.
    pub fn filter(&self) -> Option<&BloomFilter> {
        match self {
            DedupStore::Exact(_) | DedupStore::Concurrent(_) => None,
            DedupStore::Bloom(filter) => Some(filter),
        }
    }
}

/// Statistics of one crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrawlReport {
    /// Pages actually fetched.
    pub fetched: u64,
    /// URLs skipped because the de-duplication store said "already visited"
    /// although they had never been fetched (false-positive skips).
    pub wrongly_skipped: u64,
    /// URLs skipped because they genuinely had been fetched before.
    pub duplicate_skips: u64,
}

/// A breadth-first crawler with a pluggable de-duplication store.
pub struct Crawler {
    store: DedupStore,
    fetched: HashSet<String>,
    report: CrawlReport,
}

impl Crawler {
    /// Creates a crawler using `store` for de-duplication.
    pub fn new(store: DedupStore) -> Self {
        Crawler { store, fetched: HashSet::new(), report: CrawlReport::default() }
    }

    /// The crawl report accumulated so far.
    pub fn report(&self) -> CrawlReport {
        self.report
    }

    /// The de-duplication store (e.g. to inspect the polluted filter).
    pub fn store(&self) -> &DedupStore {
        &self.store
    }

    /// Set of URLs that were actually fetched.
    pub fn fetched_urls(&self) -> &HashSet<String> {
        &self.fetched
    }

    /// Crawls `graph` breadth-first from `start`, up to `max_pages` fetches.
    pub fn crawl(&mut self, graph: &WebGraph, start: &str, max_pages: u64) -> CrawlReport {
        let mut frontier = VecDeque::new();
        frontier.push_back(start.to_owned());
        while let Some(url) = frontier.pop_front() {
            if self.report.fetched >= max_pages {
                break;
            }
            if self.store.seen(&url) {
                if self.fetched.contains(&url) {
                    self.report.duplicate_skips += 1;
                } else {
                    self.report.wrongly_skipped += 1;
                }
                continue;
            }
            // Fetch the page and mark it visited.
            self.store.mark_visited(&url);
            self.fetched.insert(url.clone());
            self.report.fetched += 1;
            for link in graph.links_of(&url) {
                frontier.push_back(link.clone());
            }
        }
        self.report
    }
}

/// The adversary's link-farm site: a start page whose links are crafted
/// polluting URLs (Section 5.2).
#[derive(Debug, Clone)]
pub struct LinkFarm {
    /// Root URL of the adversary's site (the crawl entry point).
    pub root: String,
    /// The crafted polluting URLs.
    pub crafted_urls: Vec<String>,
    /// Search cost of crafting the URLs.
    pub stats: evilbloom_attacks::SearchStats,
}

/// Builds a link farm of `count` polluting URLs against the crawler's current
/// Bloom filter (the filter must be the crawler's store).
///
/// # Panics
///
/// Panics if the crawler uses an exact store (nothing to pollute).
pub fn build_link_farm(crawler: &Crawler, domain: &str, count: usize) -> LinkFarm {
    let filter = crawler.store().filter().expect("pollution only applies to Bloom-filter stores");
    let generator = UrlGenerator::new(&format!("farm-{domain}"));
    let plan = craft_polluting_items(filter, &generator, count, u64::MAX);
    LinkFarm { root: format!("http://{domain}/"), crafted_urls: plan.items, stats: plan.stats }
}

/// Inserts the link farm into a web graph: the root links to every crafted
/// URL and each crafted URL is an empty page.
pub fn install_link_farm(graph: &mut WebGraph, farm: &LinkFarm) {
    graph.add_page(farm.root.clone(), farm.crafted_urls.clone());
    for url in &farm.crafted_urls {
        graph.add_page(url.clone(), Vec::new());
    }
}

/// The adversary's hidden site: decoy pages chaining to ghost pages that the
/// crawler's filter already believes to have visited (Figure 7).
#[derive(Debug, Clone)]
pub struct HiddenSite {
    /// Decoy chain, root first.
    pub decoys: Vec<String>,
    /// Ghost pages (forged false positives).
    pub ghosts: Vec<String>,
}

/// Plans and installs a hidden site against the crawler's Bloom filter.
///
/// # Panics
///
/// Panics if the crawler uses an exact store.
pub fn build_hidden_site(
    crawler: &Crawler,
    graph: &mut WebGraph,
    domain: &str,
    decoy_depth: usize,
    ghost_count: usize,
) -> HiddenSite {
    let filter = crawler.store().filter().expect("ghost pages only apply to Bloom-filter stores");
    let plan = plan_ghost_pages(filter, domain, decoy_depth, ghost_count, u64::MAX);
    // Chain the decoys and hang the ghosts off the last decoy.
    for (i, decoy) in plan.decoys.iter().enumerate() {
        let mut links = Vec::new();
        if i + 1 < plan.decoys.len() {
            links.push(plan.decoys[i + 1].clone());
        } else {
            links.extend(plan.ghosts.iter().cloned());
        }
        graph.add_page(decoy.clone(), links);
    }
    for ghost in &plan.ghosts {
        graph.add_page(ghost.clone(), Vec::new());
    }
    HiddenSite { decoys: plan.decoys, ghosts: plan.ghosts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_store_crawls_everything_exactly_once() {
        let (graph, root) = WebGraph::honest_site("honest.example", 200);
        let mut crawler = Crawler::new(DedupStore::exact());
        let report = crawler.crawl(&graph, &root, 10_000);
        assert_eq!(report.fetched, 200);
        assert_eq!(report.wrongly_skipped, 0);
    }

    #[test]
    fn bloom_store_crawls_honest_site_fine() {
        let (graph, root) = WebGraph::honest_site("honest.example", 500);
        let mut crawler = Crawler::new(DedupStore::bloom(10_000, 0.01));
        let report = crawler.crawl(&graph, &root, 10_000);
        assert_eq!(report.fetched, 500);
        // With a 1% filter and only 500 URLs, wrongful skips are essentially
        // impossible.
        assert_eq!(report.wrongly_skipped, 0);
    }

    #[test]
    fn bloom_store_uses_less_memory_than_fingerprints() {
        let (graph, root) = WebGraph::honest_site("big.example", 2000);
        let mut exact = Crawler::new(DedupStore::exact());
        exact.crawl(&graph, &root, 10_000);
        let mut bloom = Crawler::new(DedupStore::bloom(2000, 0.001));
        bloom.crawl(&graph, &root, 10_000);
        assert!(bloom.store().memory_bytes() < exact.store().memory_bytes() / 10);
    }

    #[test]
    fn pollution_blinds_the_spider() {
        // The paper's Section 5.2 scenario: the crawl starts on the
        // adversary's page, then moves on to an honest site. The crafted
        // links inflate the filter so that honest pages are skipped.
        let capacity = 2_000u64;
        let mut crawler = Crawler::new(DedupStore::bloom(capacity, 0.05));
        let farm_size = 1_900usize;

        let farm = build_link_farm(&crawler, "evil.example", farm_size);
        let (mut graph, honest_root) = WebGraph::honest_site("victim.example", 400);
        install_link_farm(&mut graph, &farm);
        // The adversary's root links to the honest site once the farm is
        // exhausted, modelling the crawl moving on.
        let mut root_links = farm.crafted_urls.clone();
        root_links.push(honest_root.clone());
        graph.add_page(farm.root.clone(), root_links);

        let report = crawler.crawl(&graph, &farm.root, 100_000);
        assert!(report.fetched > farm_size as u64, "the farm itself is crawled");
        assert!(
            report.wrongly_skipped > 0,
            "pollution must cause honest pages to be skipped: {report:?}"
        );
        // The filter is far fuller than the designer expected.
        let fill = crawler.store().filter().expect("bloom store").fill_ratio();
        assert!(fill > 0.6, "fill {fill}");
    }

    #[test]
    fn ghost_pages_stay_hidden() {
        // Crawl an honest site first so the filter has weight, then let the
        // adversary hide pages behind forged false positives.
        let (mut graph, root) = WebGraph::honest_site("honest.example", 800);
        let mut crawler = Crawler::new(DedupStore::bloom(1_000, 0.05));
        crawler.crawl(&graph, &root, 10_000);

        let hidden = build_hidden_site(&crawler, &mut graph, "evil.example", 3, 4);
        assert_eq!(hidden.ghosts.len(), 4);

        // Continue the crawl from the adversary's decoy root.
        let report_before = crawler.report();
        let report = crawler.crawl(&graph, &hidden.decoys[0], 100_000);
        // The decoys are fetched…
        for decoy in &hidden.decoys {
            assert!(crawler.fetched_urls().contains(decoy), "decoy {decoy} must be crawled");
        }
        // …but every ghost is skipped as "already visited".
        for ghost in &hidden.ghosts {
            assert!(!crawler.fetched_urls().contains(ghost), "ghost {ghost} must stay hidden");
        }
        assert!(report.wrongly_skipped >= report_before.wrongly_skipped + 4);
    }

    #[test]
    fn concurrent_store_crawl_matches_single_threaded_filter() {
        // The same honest site, crawled once with the classic single-threaded
        // Bloom dedup and once with the concurrent sharded store: both must
        // fetch exactly the same pages exactly once.
        let (graph, root) = WebGraph::honest_site("honest.example", 600);

        let mut bloom = Crawler::new(DedupStore::bloom(10_000, 0.01));
        let bloom_report = bloom.crawl(&graph, &root, 10_000);

        let mut concurrent = Crawler::new(DedupStore::concurrent(8, 10_000, 0.01, 42));
        let concurrent_report = concurrent.crawl(&graph, &root, 10_000);

        assert_eq!(concurrent_report.fetched, bloom_report.fetched);
        assert_eq!(concurrent_report.wrongly_skipped, 0);
        assert_eq!(concurrent_report.duplicate_skips, bloom_report.duplicate_skips);
        assert_eq!(concurrent.fetched_urls(), bloom.fetched_urls());
    }

    #[test]
    fn concurrent_store_dedups_across_sequential_crawls() {
        // Two crawlers sharing one concurrent store model two spider workers:
        // what the first fetched, the second skips as duplicates.
        let dedup = ConcurrentDedup::hardened_seeded(4, 5_000, 0.01, 7);
        let (graph, root) = WebGraph::honest_site("shared.example", 300);

        let mut first = Crawler::new(DedupStore::from_concurrent(dedup.clone()));
        let first_report = first.crawl(&graph, &root, 10_000);
        assert_eq!(first_report.fetched, 300);

        let mut second = Crawler::new(DedupStore::from_concurrent(dedup));
        let second_report = second.crawl(&graph, &root, 10_000);
        // Every page the first worker fetched is "already visited" now. The
        // second crawler never fetched them itself, so its report counts the
        // skips as wrongful — from the shared store's viewpoint they are the
        // dedup working as intended.
        assert_eq!(second_report.fetched, 0);
        assert_eq!(second_report.wrongly_skipped, 1);
    }

    #[test]
    fn concurrent_store_exposes_no_filter_to_attack_tooling() {
        let crawler = Crawler::new(DedupStore::concurrent(4, 1_000, 0.01, 1));
        assert!(crawler.store().filter().is_none());
        assert!(crawler.store().memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "only applies to Bloom-filter stores")]
    fn link_farm_requires_a_bloom_store() {
        let crawler = Crawler::new(DedupStore::exact());
        build_link_farm(&crawler, "evil.example", 10);
    }

    #[test]
    fn graph_helpers() {
        let (graph, root) = WebGraph::honest_site("site.example", 10);
        assert_eq!(graph.page_count(), 10);
        assert!(graph.has_page(&root));
        assert!(!graph.links_of(&root).is_empty());
        assert!(graph.links_of("http://unknown.example/").is_empty());
    }
}

//! The typed events a flight recorder retains.
//!
//! Every variant flattens to a `(kind, [u64; 5])` raw form so one event fits
//! a fixed set of atomic ring-buffer slots and a fixed-width wire record.
//! The mapping is total in both directions for well-formed input; unknown
//! kinds decode to `None`, which the wire layer surfaces as a malformed
//! frame rather than a panic.

/// Payload words in an event's raw form (and in its wire record).
pub const EVENT_PAYLOAD_WORDS: usize = 5;

/// One forensic event, as recorded by the server or the store.
///
/// `conn_id`s are allocated per accepted connection, starting at 1, by
/// whichever I/O backend serves the socket; 0 means "no connection" and is
/// never allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A client connection was accepted.
    ConnOpened {
        /// The accepted connection's id.
        conn_id: u64,
    },
    /// A client connection was closed (either side).
    ConnClosed {
        /// The closed connection's id.
        conn_id: u64,
    },
    /// An item-bearing command (insert/query/delete, single or batch)
    /// finished executing.
    BatchExecuted {
        /// Connection the batch arrived on.
        conn_id: u64,
        /// Wire opcode of the command.
        opcode: u8,
        /// Items in the batch (1 for the single-item opcodes).
        items: u64,
        /// Fresh filter bits the batch set (0 for queries and deletes).
        fresh_bits: u64,
        /// Store execution latency.
        latency_ns: u64,
    },
    /// A shard's pollution alarm went from clear to raised.
    AlarmTripped {
        /// The alarming shard.
        shard: u64,
    },
    /// A key rotation started draining a shard.
    RotationBegun {
        /// The rotating shard.
        shard: u64,
        /// The fresh generation id now accepting writes.
        generation: u64,
    },
    /// A shard's draining rotation completed.
    RotationCompleted {
        /// The rotated shard.
        shard: u64,
    },
    /// A WAL group-commit fsync exceeded the stall threshold.
    WalFsyncStall {
        /// How long the fsync took.
        latency_ns: u64,
    },
    /// A durable snapshot was written.
    SnapshotTaken {
        /// WAL sequence number the snapshot covers.
        seq: u64,
        /// Snapshot size on disk.
        bytes: u64,
    },
    /// A request exceeded the server's slow-request latency threshold.
    SlowRequest {
        /// Connection the request arrived on.
        conn_id: u64,
        /// Wire opcode of the slow command.
        opcode: u8,
        /// How long executing it took.
        latency_ns: u64,
    },
    /// The store entered degraded read-only mode: a WAL write failed, so
    /// writes are refused until a snapshot repairs the log.
    DegradedEntered {
        /// WAL segment sequence that broke.
        wal_seq: u64,
    },
    /// The store exited degraded mode: a snapshot captured the applied
    /// state and the WAL switched to a fresh segment.
    DegradedExited {
        /// Sequence of the snapshot that repaired the log.
        snapshot_seq: u64,
    },
}

const KIND_CONN_OPENED: u8 = 1;
const KIND_CONN_CLOSED: u8 = 2;
const KIND_BATCH_EXECUTED: u8 = 3;
const KIND_ALARM_TRIPPED: u8 = 4;
const KIND_ROTATION_BEGUN: u8 = 5;
const KIND_ROTATION_COMPLETED: u8 = 6;
const KIND_WAL_FSYNC_STALL: u8 = 7;
const KIND_SNAPSHOT_TAKEN: u8 = 8;
const KIND_SLOW_REQUEST: u8 = 9;
const KIND_DEGRADED_ENTERED: u8 = 10;
const KIND_DEGRADED_EXITED: u8 = 11;

impl TraceEvent {
    /// Flattens the event to its raw `(kind, payload)` form.
    pub fn to_raw(self) -> (u8, [u64; EVENT_PAYLOAD_WORDS]) {
        match self {
            TraceEvent::ConnOpened { conn_id } => (KIND_CONN_OPENED, [conn_id, 0, 0, 0, 0]),
            TraceEvent::ConnClosed { conn_id } => (KIND_CONN_CLOSED, [conn_id, 0, 0, 0, 0]),
            TraceEvent::BatchExecuted { conn_id, opcode, items, fresh_bits, latency_ns } => {
                (KIND_BATCH_EXECUTED, [conn_id, u64::from(opcode), items, fresh_bits, latency_ns])
            }
            TraceEvent::AlarmTripped { shard } => (KIND_ALARM_TRIPPED, [shard, 0, 0, 0, 0]),
            TraceEvent::RotationBegun { shard, generation } => {
                (KIND_ROTATION_BEGUN, [shard, generation, 0, 0, 0])
            }
            TraceEvent::RotationCompleted { shard } => {
                (KIND_ROTATION_COMPLETED, [shard, 0, 0, 0, 0])
            }
            TraceEvent::WalFsyncStall { latency_ns } => {
                (KIND_WAL_FSYNC_STALL, [latency_ns, 0, 0, 0, 0])
            }
            TraceEvent::SnapshotTaken { seq, bytes } => {
                (KIND_SNAPSHOT_TAKEN, [seq, bytes, 0, 0, 0])
            }
            TraceEvent::SlowRequest { conn_id, opcode, latency_ns } => {
                (KIND_SLOW_REQUEST, [conn_id, u64::from(opcode), latency_ns, 0, 0])
            }
            TraceEvent::DegradedEntered { wal_seq } => {
                (KIND_DEGRADED_ENTERED, [wal_seq, 0, 0, 0, 0])
            }
            TraceEvent::DegradedExited { snapshot_seq } => {
                (KIND_DEGRADED_EXITED, [snapshot_seq, 0, 0, 0, 0])
            }
        }
    }

    /// Rebuilds an event from its raw form; `None` for unknown kinds or
    /// payload words outside a field's range (a hostile wire frame, or a
    /// torn ring slot that slipped past the seqlock check).
    pub fn from_raw(kind: u8, payload: [u64; EVENT_PAYLOAD_WORDS]) -> Option<TraceEvent> {
        let [a, b, c, d, e] = payload;
        Some(match kind {
            KIND_CONN_OPENED => TraceEvent::ConnOpened { conn_id: a },
            KIND_CONN_CLOSED => TraceEvent::ConnClosed { conn_id: a },
            KIND_BATCH_EXECUTED => TraceEvent::BatchExecuted {
                conn_id: a,
                opcode: u8::try_from(b).ok()?,
                items: c,
                fresh_bits: d,
                latency_ns: e,
            },
            KIND_ALARM_TRIPPED => TraceEvent::AlarmTripped { shard: a },
            KIND_ROTATION_BEGUN => TraceEvent::RotationBegun { shard: a, generation: b },
            KIND_ROTATION_COMPLETED => TraceEvent::RotationCompleted { shard: a },
            KIND_WAL_FSYNC_STALL => TraceEvent::WalFsyncStall { latency_ns: a },
            KIND_SNAPSHOT_TAKEN => TraceEvent::SnapshotTaken { seq: a, bytes: b },
            KIND_SLOW_REQUEST => {
                TraceEvent::SlowRequest { conn_id: a, opcode: u8::try_from(b).ok()?, latency_ns: c }
            }
            KIND_DEGRADED_ENTERED => TraceEvent::DegradedEntered { wal_seq: a },
            KIND_DEGRADED_EXITED => TraceEvent::DegradedExited { snapshot_seq: a },
            _ => return None,
        })
    }

    /// Short lowercase tag for text expositions (`"batch"`, `"alarm"`, …).
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::ConnOpened { .. } => "conn-open",
            TraceEvent::ConnClosed { .. } => "conn-close",
            TraceEvent::BatchExecuted { .. } => "batch",
            TraceEvent::AlarmTripped { .. } => "alarm",
            TraceEvent::RotationBegun { .. } => "rotate-begin",
            TraceEvent::RotationCompleted { .. } => "rotate-complete",
            TraceEvent::WalFsyncStall { .. } => "fsync-stall",
            TraceEvent::SnapshotTaken { .. } => "snapshot",
            TraceEvent::SlowRequest { .. } => "slow-request",
            TraceEvent::DegradedEntered { .. } => "degraded-enter",
            TraceEvent::DegradedExited { .. } => "degraded-exit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ConnOpened { conn_id: 7 },
            TraceEvent::ConnClosed { conn_id: u64::MAX },
            TraceEvent::BatchExecuted {
                conn_id: 3,
                opcode: 0x05,
                items: 100,
                fresh_bits: 693,
                latency_ns: 12_345,
            },
            TraceEvent::AlarmTripped { shard: 2 },
            TraceEvent::RotationBegun { shard: 1, generation: 4 },
            TraceEvent::RotationCompleted { shard: 1 },
            TraceEvent::WalFsyncStall { latency_ns: 25_000_000 },
            TraceEvent::SnapshotTaken { seq: 900, bytes: 65_536 },
            TraceEvent::SlowRequest { conn_id: 5, opcode: 0x07, latency_ns: 200_000_000 },
            TraceEvent::DegradedEntered { wal_seq: 12 },
            TraceEvent::DegradedExited { snapshot_seq: 13 },
        ]
    }

    #[test]
    fn raw_roundtrip_is_identity_for_every_variant() {
        for event in all_variants() {
            let (kind, payload) = event.to_raw();
            assert_eq!(TraceEvent::from_raw(kind, payload), Some(event));
        }
    }

    #[test]
    fn unknown_kinds_decode_to_none() {
        assert_eq!(TraceEvent::from_raw(0, [0; 5]), None);
        assert_eq!(TraceEvent::from_raw(12, [1, 2, 3, 4, 5]), None);
        assert_eq!(TraceEvent::from_raw(0xFF, [0; 5]), None);
    }

    #[test]
    fn out_of_range_opcode_words_decode_to_none() {
        // A hostile frame can claim an opcode above u8::MAX in the payload
        // word; decoding must reject it instead of truncating.
        assert_eq!(TraceEvent::from_raw(3, [1, 256, 0, 0, 0]), None);
        assert_eq!(TraceEvent::from_raw(9, [1, u64::MAX, 0, 0, 0]), None);
    }

    #[test]
    fn tags_are_distinct() {
        let tags: std::collections::BTreeSet<&str> =
            all_variants().iter().map(TraceEvent::tag).collect();
        assert_eq!(tags.len(), all_variants().len());
    }
}

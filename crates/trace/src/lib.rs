//! Attack forensics for evilbloom: a flight recorder and a drift table.
//!
//! The store's aggregate telemetry (`evilbloom-metrics`) answers *whether* a
//! chosen-insertion attack is under way — shard alarms trip, the
//! bits-per-insert gauge pins at `k`. This crate answers the two follow-up
//! questions an operator actually asks: **who** is doing it, and **what
//! exactly happened**:
//!
//! - [`FlightRecorder`] — a lock-free, fixed-capacity ring buffer of typed
//!   [`TraceEvent`]s (connection lifecycle, executed batches with their
//!   fresh-bit yield, pollution alarms, rotations, WAL fsync stalls,
//!   snapshots, slow requests) with coarse monotonic timestamps,
//!   overwrite-oldest semantics and an exact dropped-events counter.
//! - [`SuspectTable`] — per-connection bits-per-insert EWMAs. Honest clients
//!   decay toward `k·(1−fill)` as the filter fills; the paper's crafted
//!   batches keep setting `k` fresh bits each, so an attacking connection
//!   pins at `k` and surfaces at rank 1 in [`SuspectTable::top`].
//!
//! Like `evilbloom-metrics`, this crate has **zero dependencies** and sits
//! below every other crate: the store records storage-side events into an
//! attached recorder, the server records wire-side events and feeds the
//! drift table, and the `TRACE` opcode exposes both over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod event;
mod recorder;

pub use attribution::{ConnDrift, SuspectTable, DEFAULT_EWMA_ALPHA};
pub use event::{TraceEvent, EVENT_PAYLOAD_WORDS};
pub use recorder::{FlightRecorder, RecordedEvent};

//! The lock-free flight recorder: a fixed-capacity ring of seqlocked slots.
//!
//! Writers never block and never allocate: [`FlightRecorder::record`] claims
//! the next slot with one `fetch_add`, publishes the event through a per-slot
//! sequence word, and overwrites the oldest retained event once the ring
//! wraps. Slot claims are strictly exclusive — a writer that finds its slot
//! mid-write (an older writer is stalled there, or the ring lapped it and a
//! newer writer owns the slot) gives the event up and counts it in
//! [`FlightRecorder::dropped`] rather than spinning or scribbling over a
//! concurrent write. Under forensic load the freshest events are the
//! valuable ones, and the counter keeps the accounting exact.
//!
//! Readers ([`FlightRecorder::snapshot`]) are wait-free and lossy by design:
//! a slot whose sequence word changes mid-read is torn and skipped. The
//! sequence protocol is the classic seqlock, per slot: event `n` writes
//! `2n+1` while mutating and `2n+2` once stable, so a stable word is even
//! and uniquely identifies which event the slot holds.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use crate::event::{TraceEvent, EVENT_PAYLOAD_WORDS};

/// One event as read back out of the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// The event's position in the recorder's history (0-based, monotonic
    /// across wraps).
    pub seq: u64,
    /// Coarse uptime timestamp: milliseconds since the recorder was built.
    pub ts_ms: u64,
    /// The event itself.
    pub event: TraceEvent,
}

struct Slot {
    /// Seqlock word: 0 = never written, `2n+1` = event `n` being written,
    /// `2n+2` = event `n` stable.
    seq: AtomicU64,
    ts_ms: AtomicU64,
    kind: AtomicU64,
    payload: [AtomicU64; EVENT_PAYLOAD_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_ms: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            payload: [const { AtomicU64::new(0) }; EVENT_PAYLOAD_WORDS],
        }
    }
}

/// A lock-free, fixed-capacity ring buffer of [`TraceEvent`]s with
/// overwrite-oldest semantics.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// Smallest ring the recorder will build.
    pub const MIN_CAPACITY: usize = 8;

    /// Builds a recorder retaining at least `capacity` events (rounded up to
    /// the next power of two, minimum [`FlightRecorder::MIN_CAPACITY`]).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(Self::MIN_CAPACITY).next_power_of_two();
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::empty()).collect();
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Events the ring retains once full.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Coarse uptime clock: milliseconds since the recorder was built.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Total events ever recorded (including ones since overwritten or
    /// dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to writer contention: a slot stolen by a lapping writer
    /// costs exactly one increment, on the loser's side.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events that scrolled out of the ring because newer ones overwrote
    /// them.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Records one event; never blocks. An event whose slot cannot be
    /// claimed exclusively (an older writer is stalled mid-write there, or
    /// the ring already lapped past it) is abandoned and counted in
    /// [`FlightRecorder::dropped`].
    pub fn record(&self, event: TraceEvent) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n & self.mask) as usize];
        let writing = 2 * n + 1;
        // Claim the slot for event `n`. Sequence words only grow, so one at
        // or past our own `writing` value means a lapping writer (event
        // `n + capacity·j`) already owns the slot; an odd one means an
        // older writer is still mid-write. Claiming in either case would
        // let two writers scribble over the same payload words, so the
        // event is dropped and counted instead.
        let mut current = slot.seq.load(Ordering::Relaxed);
        loop {
            if current >= writing || current % 2 == 1 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            match slot.seq.compare_exchange_weak(
                current,
                writing,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        // The claim is exclusive — every competing writer bails on the odd
        // word above — so these stores race only with readers, which the
        // sequence re-check in `snapshot` handles.
        let (kind, payload) = event.to_raw();
        slot.ts_ms.store(self.uptime_ms(), Ordering::Relaxed);
        slot.kind.store(u64::from(kind), Ordering::Relaxed);
        for (cell, word) in slot.payload.iter().zip(payload) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store(writing + 1, Ordering::Release);
    }

    /// Reads the retained events, oldest first. Wait-free; slots that are
    /// mid-write (or whose raw form fails to decode) are skipped rather
    /// than waited on, so a snapshot taken under write load may be shorter
    /// than the ring.
    pub fn snapshot(&self) -> Vec<RecordedEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // Never written, or a write is in flight.
            }
            let ts_ms = slot.ts_ms.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let mut payload = [0u64; EVENT_PAYLOAD_WORDS];
            for (word, cell) in payload.iter_mut().zip(&slot.payload) {
                *word = cell.load(Ordering::Relaxed);
            }
            // Order the field loads before the validity re-check: an
            // unchanged sequence word proves no writer touched the slot
            // between the two loads, so the fields are a consistent set.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != before {
                continue; // Torn: a writer claimed the slot mid-read.
            }
            let Ok(kind) = u8::try_from(kind) else { continue };
            let Some(event) = TraceEvent::from_raw(kind, payload) else { continue };
            events.push(RecordedEvent { seq: before / 2 - 1, ts_ms, event });
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), FlightRecorder::MIN_CAPACITY);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(1024).capacity(), 1024);
    }

    #[test]
    fn single_writer_snapshot_is_exact_and_ordered() {
        let recorder = FlightRecorder::new(64);
        for i in 0..50u64 {
            recorder.record(TraceEvent::ConnOpened { conn_id: i });
        }
        assert_eq!(recorder.recorded(), 50);
        assert_eq!(recorder.dropped(), 0);
        assert_eq!(recorder.overwritten(), 0);
        let events = recorder.snapshot();
        assert_eq!(events.len(), 50);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.event, TraceEvent::ConnOpened { conn_id: i as u64 });
        }
    }

    #[test]
    fn wrapping_overwrites_the_oldest_events() {
        let recorder = FlightRecorder::new(16);
        for i in 0..100u64 {
            recorder.record(TraceEvent::ConnClosed { conn_id: i });
        }
        assert_eq!(recorder.recorded(), 100);
        assert_eq!(recorder.dropped(), 0);
        assert_eq!(recorder.overwritten(), 100 - 16);
        let events = recorder.snapshot();
        assert_eq!(events.len(), 16);
        for (i, e) in events.iter().enumerate() {
            let expected = 100 - 16 + i as u64;
            assert_eq!(e.seq, expected);
            assert_eq!(e.event, TraceEvent::ConnClosed { conn_id: expected });
        }
    }

    #[test]
    fn timestamps_are_monotonic_within_a_snapshot() {
        let recorder = FlightRecorder::new(32);
        for i in 0..32u64 {
            recorder.record(TraceEvent::AlarmTripped { shard: i });
        }
        let events = recorder.snapshot();
        for pair in events.windows(2) {
            assert!(pair[0].ts_ms <= pair[1].ts_ms);
        }
    }
}

//! Per-connection drift attribution: bits-per-insert EWMAs and a top-K
//! suspect ranking.
//!
//! The signal comes straight from the paper's analysis. An honest insert
//! into a filter at fill ratio `p` sets about `k·(1−p)` fresh bits — the
//! expected number of its `k` indexes that land on zero bits — so honest
//! connections' rates *decay* as the filter fills. A chosen-insertion
//! adversary crafts items whose indexes avoid already-set bits, so every
//! crafted insert yields close to `k` fresh bits no matter the fill: its
//! connection's EWMA pins at `k` and rises to the top of the ranking.

use std::collections::HashMap;
use std::sync::Mutex;

/// Default EWMA smoothing factor: heavy enough that a handful of crafted
/// batches pins the estimate near `k`, light enough that one noisy batch
/// does not convict an honest connection.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.3;

/// One connection's accumulated drift evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnDrift {
    /// The connection this row attributes to.
    pub conn_id: u64,
    /// Insert batches observed (single inserts count as batches of one).
    pub batches: u64,
    /// Total items inserted.
    pub items: u64,
    /// Total fresh bits those inserts set.
    pub fresh_bits: u64,
    /// Exponentially weighted moving average of fresh bits per inserted
    /// item — the suspicion score.
    pub ewma_bits_per_item: f64,
}

/// Tracks bits-per-insert EWMAs per connection and ranks the suspects.
///
/// Bounded: when full, admitting a new connection evicts the current
/// least-suspicious row, so an attacker cannot grow server memory by
/// churning connections — and cannot evict itself, since its row holds the
/// highest score.
pub struct SuspectTable {
    alpha: f64,
    capacity: usize,
    rows: Mutex<HashMap<u64, ConnDrift>>,
}

impl SuspectTable {
    /// Builds a table holding at most `capacity` connections (minimum 1),
    /// smoothing with [`DEFAULT_EWMA_ALPHA`].
    pub fn new(capacity: usize) -> SuspectTable {
        SuspectTable::with_alpha(capacity, DEFAULT_EWMA_ALPHA)
    }

    /// Builds a table with an explicit smoothing factor in `(0, 1]`.
    pub fn with_alpha(capacity: usize, alpha: f64) -> SuspectTable {
        let alpha = if alpha > 0.0 && alpha <= 1.0 { alpha } else { DEFAULT_EWMA_ALPHA };
        SuspectTable { alpha, capacity: capacity.max(1), rows: Mutex::new(HashMap::new()) }
    }

    /// Folds one insert batch into `conn_id`'s row. Batches with zero items
    /// carry no rate information and are ignored.
    pub fn record_batch(&self, conn_id: u64, items: u64, fresh_bits: u64) {
        if items == 0 {
            return;
        }
        let rate = fresh_bits as f64 / items as f64;
        let mut rows = self.rows.lock().expect("suspect table poisoned");
        if let Some(row) = rows.get_mut(&conn_id) {
            row.batches += 1;
            row.items += items;
            row.fresh_bits += fresh_bits;
            row.ewma_bits_per_item =
                self.alpha * rate + (1.0 - self.alpha) * row.ewma_bits_per_item;
            return;
        }
        if rows.len() >= self.capacity {
            // Evict the least-suspicious row (lowest EWMA; highest conn_id
            // breaks ties, so older evidence survives longer).
            let victim = rows
                .values()
                .min_by(|a, b| {
                    a.ewma_bits_per_item
                        .total_cmp(&b.ewma_bits_per_item)
                        .then(b.conn_id.cmp(&a.conn_id))
                })
                .map(|row| row.conn_id);
            if let Some(victim) = victim {
                rows.remove(&victim);
            }
        }
        // The first batch seeds the EWMA at its own rate: an unseeded
        // average starting from 0 would under-score an attacker's opening
        // volley by exactly the factor the ranking depends on.
        rows.insert(
            conn_id,
            ConnDrift { conn_id, batches: 1, items, fresh_bits, ewma_bits_per_item: rate },
        );
    }

    /// The `k` most suspicious connections, highest EWMA first; ties break
    /// toward the lower conn_id so the ranking is deterministic.
    pub fn top(&self, k: usize) -> Vec<ConnDrift> {
        let rows = self.rows.lock().expect("suspect table poisoned");
        let mut ranked: Vec<ConnDrift> = rows.values().copied().collect();
        ranked.sort_unstable_by(|a, b| {
            b.ewma_bits_per_item.total_cmp(&a.ewma_bits_per_item).then(a.conn_id.cmp(&b.conn_id))
        });
        ranked.truncate(k);
        ranked
    }

    /// One connection's row, if tracked.
    pub fn get(&self, conn_id: u64) -> Option<ConnDrift> {
        self.rows.lock().expect("suspect table poisoned").get(&conn_id).copied()
    }

    /// Connections currently tracked.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("suspect table poisoned").len()
    }

    /// Whether no connection has inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SuspectTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuspectTable")
            .field("alpha", &self.alpha)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_batch_seeds_the_ewma_at_its_own_rate() {
        let table = SuspectTable::new(16);
        table.record_batch(1, 100, 400);
        let row = table.get(1).unwrap();
        assert_eq!(row.batches, 1);
        assert!((row.ewma_bits_per_item - 4.0).abs() < 1e-12);
    }

    #[test]
    fn crafted_batches_outrank_decaying_honest_traffic() {
        let k = 7.0;
        let table = SuspectTable::new(16);
        // Honest connections: fresh-bit yield decays as the filter fills.
        for conn in 1..=4u64 {
            for batch in 0..6u64 {
                let fill = 0.1 * (batch as f64 + 1.0);
                let fresh = (100.0 * k * (1.0 - fill)) as u64;
                table.record_batch(conn, 100, fresh);
            }
        }
        // The attacker pins at k fresh bits per item throughout.
        for _ in 0..6 {
            table.record_batch(5, 100, (100.0 * k) as u64);
        }
        let top = table.top(3);
        assert_eq!(top[0].conn_id, 5);
        assert!((top[0].ewma_bits_per_item - k).abs() < 1e-9);
        assert!(top[0].ewma_bits_per_item > top[1].ewma_bits_per_item + 1.0);
    }

    #[test]
    fn ranking_ties_break_toward_the_lower_conn_id() {
        let table = SuspectTable::new(16);
        table.record_batch(9, 10, 40);
        table.record_batch(2, 10, 40);
        table.record_batch(5, 10, 40);
        let top: Vec<u64> = table.top(10).iter().map(|r| r.conn_id).collect();
        assert_eq!(top, vec![2, 5, 9]);
    }

    #[test]
    fn eviction_removes_the_least_suspicious_row_and_spares_the_attacker() {
        let table = SuspectTable::new(3);
        table.record_batch(1, 10, 70); // the "attacker": 7.0 bits/item
        table.record_batch(2, 10, 30);
        table.record_batch(3, 10, 20);
        table.record_batch(4, 10, 50); // evicts conn 3 (rate 2.0)
        assert_eq!(table.len(), 3);
        assert!(table.get(3).is_none());
        assert_eq!(table.top(1)[0].conn_id, 1);
    }

    #[test]
    fn zero_item_batches_are_ignored() {
        let table = SuspectTable::new(4);
        table.record_batch(1, 0, 0);
        assert!(table.is_empty());
    }

    #[test]
    fn top_is_stable_across_calls() {
        let table = SuspectTable::new(8);
        table.record_batch(3, 10, 55);
        table.record_batch(1, 10, 55);
        assert_eq!(table.top(5), table.top(5));
    }
}

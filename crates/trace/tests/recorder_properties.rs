//! Property tests for the flight recorder's concurrency contract: seeded
//! multithreaded writers, overwrite-oldest retention, and exact accounting
//! between the recorded / dropped / retained counters.

use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use evilbloom_trace::{FlightRecorder, TraceEvent};

/// Encodes `(writer, index)` redundantly across payload words so a torn
/// slot that somehow survived the seqlock check would be detectable.
fn stamped(writer: u64, index: u64) -> TraceEvent {
    TraceEvent::BatchExecuted {
        conn_id: writer,
        opcode: 0x05,
        items: index,
        fresh_bits: writer.wrapping_mul(1_000_003).wrapping_add(index),
        latency_ns: index,
    }
}

#[test]
fn overwrite_oldest_retains_exactly_the_tail() {
    for (capacity, writes) in [(16usize, 16u64), (16, 17), (64, 1_000), (128, 129)] {
        let recorder = FlightRecorder::new(capacity);
        for i in 0..writes {
            recorder.record(stamped(1, i));
        }
        assert_eq!(recorder.recorded(), writes);
        assert_eq!(recorder.dropped(), 0, "single-threaded writes never contend");
        assert_eq!(recorder.overwritten(), writes.saturating_sub(capacity as u64));
        let events = recorder.snapshot();
        let retained = writes.min(capacity as u64);
        assert_eq!(events.len() as u64, retained);
        for (offset, event) in events.iter().enumerate() {
            let expected = writes - retained + offset as u64;
            assert_eq!(event.seq, expected);
            assert_eq!(event.event, stamped(1, expected));
        }
    }
}

#[test]
fn seeded_multithreaded_writers_account_for_every_event() {
    let mut rng = StdRng::seed_from_u64(0xF11_687);
    for round in 0..8 {
        let writers = rng.gen_range(2usize..6);
        let per_writer = rng.gen_range(200u64..1_200);
        let capacity = 1usize << rng.gen_range(4u32..9);
        let recorder = Arc::new(FlightRecorder::new(capacity));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let recorder = Arc::clone(&recorder);
                thread::spawn(move || {
                    for i in 0..per_writer {
                        recorder.record(stamped(w as u64, i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let attempts = writers as u64 * per_writer;
        let retained = attempts.min(capacity as u64);
        assert_eq!(recorder.recorded(), attempts, "round {round}: every record() is counted");
        let events = recorder.snapshot();
        // Quiescent snapshot: every claimed write finished, so each touched
        // slot holds exactly one stable event — the snapshot is exactly one
        // event per slot, and the dropped counter accounts for every event
        // that lost its claim (an in-window loser leaves an older event in
        // its slot, never a hole).
        assert_eq!(events.len() as u64, retained, "round {round}");
        assert_eq!(recorder.overwritten(), attempts - retained, "round {round}");

        // Sequence numbers are unique, sorted, and below the write count;
        // anything older than the final window must be covered by a drop.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "round {round}");
        }
        for event in &events {
            assert!(event.seq < attempts, "round {round}");
            assert!(
                event.seq >= attempts.saturating_sub(capacity as u64) || recorder.dropped() > 0,
                "round {round}: stale event without a recorded drop"
            );
            // Payload words all belong to the same logical write — a torn
            // mix of two writers would break the stamp.
            match event.event {
                TraceEvent::BatchExecuted { conn_id, items, fresh_bits, latency_ns, .. } => {
                    assert!(conn_id < writers as u64, "round {round}");
                    assert_eq!(items, latency_ns, "round {round}");
                    assert_eq!(
                        fresh_bits,
                        conn_id.wrapping_mul(1_000_003).wrapping_add(items),
                        "round {round}: torn slot survived the seqlock"
                    );
                }
                other => panic!("round {round}: unexpected event {other:?}"),
            }
        }
    }
}

#[test]
fn concurrent_readers_never_observe_torn_events() {
    let recorder = Arc::new(FlightRecorder::new(32));
    let writer = {
        let recorder = Arc::clone(&recorder);
        thread::spawn(move || {
            for i in 0..50_000u64 {
                recorder.record(stamped(i % 3, i));
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let recorder = Arc::clone(&recorder);
            thread::spawn(move || {
                let mut seen = 0usize;
                while seen < 200 {
                    for event in recorder.snapshot() {
                        if let TraceEvent::BatchExecuted { conn_id, items, fresh_bits, .. } =
                            event.event
                        {
                            assert_eq!(
                                fresh_bits,
                                conn_id.wrapping_mul(1_000_003).wrapping_add(items),
                                "torn event escaped the recorder"
                            );
                            seen += 1;
                        }
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }
}

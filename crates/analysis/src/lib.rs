//! # evilbloom-analysis
//!
//! Closed-form analysis of Bloom filters under honest and adversarial
//! workloads, covering every expression used in *"The Power of Evil Choices
//! in Bloom Filters"* (Gerbet, Kumar & Lauradoux, DSN 2015):
//!
//! * [`false_positive`] — the classic (honest) false-positive probability,
//!   optimal parameters, expected fill and the Azuma–Hoeffding concentration
//!   bound (Section 3);
//! * [`worst_case`] — the adversarial false-positive probability
//!   `f_adv = (nk/m)^k`, the worst-case-optimal parameters `k = m/(en)`, the
//!   pollution/saturation economics and the Figure 3 threshold crossings
//!   (Sections 4.1 and 8.1);
//! * [`attack_probability`] — the per-candidate success probabilities of
//!   Table 1 (pollution, false-positive forgery, deletion, second pre-images)
//!   and the induced brute-force costs;
//! * [`blocked`] — the corrected (Poisson-mixture) false-positive probability
//!   of cache-line blocked filters and their pollution trajectory — the
//!   block-load variance the textbook formula ignores;
//! * [`scalable`] — the compound false-positive probability of scalable /
//!   Dablooms-style filter stacks and its behaviour under partial pollution
//!   (Section 6, Figure 8);
//! * [`hash_domain`] — the digest-bit budget `k ceil(log2 m)` behind the
//!   recycling countermeasure and Figure 9 (Section 8.2).
//!
//! The crate is dependency-free and purely numerical; the concrete data
//! structures live in `evilbloom-filters` and the attack engines in
//! `evilbloom-attacks`.
//!
//! ## Example
//!
//! ```
//! use evilbloom_analysis::{false_positive, worst_case};
//!
//! // Figure 3 of the paper: m = 3200, k = 4.
//! let honest = false_positive::false_positive_approx(3200, 600, 4);
//! let adversarial = worst_case::adversarial_false_positive(3200, 600, 4);
//! assert!(adversarial > 4.0 * honest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_probability;
pub mod blocked;
pub mod false_positive;
pub mod hash_domain;
pub mod scalable;
pub mod worst_case;

pub use attack_probability::AttackKind;
pub use hash_domain::Figure9Row;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_between_honest_and_adversarial_models() {
        // For every load level the adversarial probability dominates the
        // honest one once the birthday-free region is passed.
        let (m, k) = (3200u64, 4u32);
        for n in (50..600).step_by(50) {
            let honest = false_positive::false_positive_approx(m, n, k);
            let adv = worst_case::adversarial_false_positive(m, n, k);
            assert!(adv + 1e-12 >= honest, "n={n} honest={honest} adv={adv}");
        }
    }

    #[test]
    fn worst_case_design_needs_fewer_hashes_than_honest_design() {
        let (m, n) = (1 << 20, 100_000u64);
        assert!(worst_case::adversarial_optimal_k(m, n) < false_positive::optimal_k(m, n));
    }
}

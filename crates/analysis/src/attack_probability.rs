//! Success probabilities of the paper's attacks — Table 1 and Section 4.
//!
//! Each function returns the probability that one *uniformly random*
//! candidate item satisfies the adversary's predicate; the expected number of
//! brute-force trials is the reciprocal. The table (for a filter of Hamming
//! weight `W`):
//!
//! | Attack | Probability |
//! |---|---|
//! | Second pre-image (hash function) | `1 / 2^l` |
//! | Second pre-image (Bloom filter) | `1 / m^k` |
//! | Pollution | `C(m - W, k) / m^k` |
//! | False-positive forgery | `(W/m)^k` (between `(k/m)^k` and `(1/2)^k`) |
//! | Deletion | `Σ_{i=1..k} C(k,i) (m-i)^k / m^k` |

/// Probability that a random item is a second pre-image of a given digest
/// under an `l`-bit hash function: `2^{-l}`.
pub fn second_preimage_hash(l_bits: u32) -> f64 {
    2f64.powi(-(l_bits as i32))
}

/// Probability that a random item produces exactly the same index set as a
/// given item in an `(m, k)` Bloom filter: `m^{-k}`.
pub fn second_preimage_bloom(m: u64, k: u32) -> f64 {
    (m as f64).powi(-(k as i32))
}

/// Probability that a random item is a *polluting* item for a filter of
/// Hamming weight `w`: all `k` of its indexes must land on distinct unset
/// bits, i.e. `C(m - w, k) / m^k` (falling-factorial counting of ordered
/// choices divided by `k!`… the paper counts unordered choices over ordered
/// index tuples; we follow the paper's expression).
pub fn pollution(m: u64, w: u64, k: u32) -> f64 {
    if w >= m {
        return 0.0;
    }
    binomial(m - w, u64::from(k)) / (m as f64).powi(k as i32)
}

/// Exact probability that a random item is a polluting item: its `k`
/// (ordered, independent) indexes must all be distinct and all land on unset
/// bits, i.e. the falling factorial `(m-w)(m-w-1)…(m-w-k+1) / m^k`.
///
/// The paper's Table 1 expression ([`pollution`]) divides the *unordered*
/// count `C(m-w, k)` by the ordered space `m^k`, undercounting by `k!`; this
/// function gives the probability actually observed by the brute-force
/// search (and verified by the Monte-Carlo experiment for Table 1).
pub fn pollution_exact(m: u64, w: u64, k: u32) -> f64 {
    if w >= m {
        return 0.0;
    }
    let free = m - w;
    if u64::from(k) > free {
        return 0.0;
    }
    let mut p = 1.0f64;
    for i in 0..u64::from(k) {
        p *= (free - i) as f64 / m as f64;
    }
    p
}

/// Probability that a random item is a false positive for a filter of
/// Hamming weight `w`: `(w/m)^k`.
pub fn false_positive_forgery(m: u64, w: u64, k: u32) -> f64 {
    assert!(w <= m, "Hamming weight cannot exceed filter size");
    ((w as f64) / m as f64).powi(k as i32)
}

/// Lower bound of the forgery probability quoted in Table 1: `(k/m)^k`
/// (a filter holding a single item has weight at most `k`).
pub fn false_positive_forgery_lower_bound(m: u64, k: u32) -> f64 {
    ((k as f64) / m as f64).powi(k as i32)
}

/// Upper bound of the forgery probability quoted in Table 1: `(1/2)^k`
/// (an optimally loaded filter has weight `m/2`).
pub fn false_positive_forgery_upper_bound(k: u32) -> f64 {
    0.5f64.powi(k as i32)
}

/// Probability that a random item shares at least one index with a given
/// target item — the deletion-adversary predicate:
/// `Σ_{i=1..k} C(k,i) (m-i)^k / m^k`.
///
/// The expression follows the paper; it upper-bounds the exact
/// inclusion–exclusion value and converges to it for `m >> k`.
pub fn deletion(m: u64, k: u32) -> f64 {
    let mk = (m as f64).powi(k as i32);
    let mut total = 0.0;
    for i in 1..=u64::from(k) {
        total += binomial(u64::from(k), i) * ((m - i) as f64).powi(k as i32) / mk;
    }
    total.min(1.0)
}

/// Exact probability that a random item's index set intersects a given
/// target item's index set (assuming the target's `k` indexes are distinct):
/// `1 - ((m-k)/m)^k`. Provided alongside [`deletion`] so experiments can
/// compare the paper's expression with the exact overlap probability.
pub fn deletion_exact_overlap(m: u64, k: u32) -> f64 {
    assert!(u64::from(k) <= m, "k cannot exceed m");
    1.0 - (((m - u64::from(k)) as f64) / m as f64).powi(k as i32)
}

/// Probability that a random item is a worst-case-latency query: its first
/// `k - 1` indexes hit set bits and its last index hits an unset bit —
/// `(w/m)^{k-1} * (1 - w/m)` (Section 4.2, dummy queries).
pub fn latency_query(m: u64, w: u64, k: u32) -> f64 {
    assert!(w <= m, "Hamming weight cannot exceed filter size");
    assert!(k >= 1, "k must be at least 1");
    let fill = w as f64 / m as f64;
    fill.powi(k as i32 - 1) * (1.0 - fill)
}

/// Expected number of uniformly random candidates an adversary must try to
/// find one item with success probability `p` (geometric distribution mean).
pub fn expected_trials(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
    1.0 / p
}

/// Binomial coefficient `C(n, r)` as an `f64` (exact for the small `r` used
/// throughout the paper's formulas).
pub fn binomial(n: u64, r: u64) -> f64 {
    if r > n {
        return 0.0;
    }
    let r = r.min(n - r);
    let mut result = 1.0f64;
    for i in 0..r {
        result *= (n - i) as f64;
        result /= (i + 1) as f64;
    }
    result
}

/// The ordering of attacks by feasibility stated at the end of Section 4:
/// pollution is easiest, deletion hardest, forgery in between (for a filter
/// that is neither empty nor saturated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Chosen-insertion pollution.
    Pollution,
    /// Query-only false-positive forgery.
    FalsePositiveForgery,
    /// Deletion of a targeted item.
    Deletion,
}

/// Returns the attacks ordered from highest to lowest success probability for
/// the given filter state.
pub fn rank_attacks(m: u64, w: u64, k: u32) -> Vec<(AttackKind, f64)> {
    let mut ranked = vec![
        (AttackKind::Pollution, pollution_exact(m, w, k)),
        (AttackKind::FalsePositiveForgery, false_positive_forgery(m, w, k)),
        (AttackKind::Deletion, deletion_success_for_target(m, w, k)),
    ];
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are comparable"));
    ranked
}

/// Probability that a random insertion into a *counting* filter decrements at
/// least one counter of a specific target item when later deleted, expressed
/// for the current weight `w`: the candidate must overlap the target's `k`
/// cells, all of which are among the `w` set cells.
fn deletion_success_for_target(m: u64, _w: u64, k: u32) -> f64 {
    deletion_exact_overlap(m, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 5), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn second_preimage_probabilities() {
        assert_eq!(second_preimage_hash(32), 1.0 / 4_294_967_296.0);
        assert!((second_preimage_bloom(3200, 4) - (3200f64).powi(-4)).abs() < 1e-30);
        // The Bloom second pre-image is far easier than a 128-bit hash one.
        assert!(second_preimage_bloom(3200, 4) > second_preimage_hash(128));
    }

    #[test]
    fn pollution_is_easiest_on_an_empty_filter() {
        let p_empty = pollution_exact(3200, 0, 4);
        let p_half = pollution_exact(3200, 1600, 4);
        let p_full = pollution_exact(3200, 3200, 4);
        assert!(p_empty > p_half);
        assert_eq!(p_full, 0.0);
        // On an empty filter almost any random item pollutes (indexes rarely
        // collide with each other).
        assert!(p_empty > 0.95);
    }

    #[test]
    fn paper_pollution_formula_differs_by_k_factorial() {
        // Table 1 counts unordered index choices; the observable probability
        // is k! times larger when the filter is lightly loaded.
        let (m, w, k) = (1u64 << 20, 1000u64, 4u32);
        let ratio = pollution_exact(m, w, k) / pollution(m, w, k);
        assert!((ratio - 24.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn forgery_bounds_hold() {
        let m = 3200;
        let k = 4;
        for w in [k as u64, 100, 800, 1600] {
            let p = false_positive_forgery(m, w, k);
            assert!(p >= false_positive_forgery_lower_bound(m, k) - 1e-15);
            assert!(p <= false_positive_forgery_upper_bound(k) + 1e-15 || w > m / 2);
        }
    }

    #[test]
    fn forgery_on_half_full_filter_is_2_to_minus_k() {
        let p = false_positive_forgery(1 << 20, 1 << 19, 10);
        assert!((p - 0.5f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn deletion_probability_close_to_exact_for_large_m() {
        let m = 1 << 20;
        let k = 4;
        let paper = deletion(m, k);
        let exact = deletion_exact_overlap(m, k);
        // The paper's expression is an over-count; it approaches k^2/m-ish
        // values while the exact one is ~k^2/m as well for large m.
        assert!(paper >= exact * 0.9);
        assert!(exact < 1e-3);
    }

    #[test]
    fn deletion_is_hardest_forgery_in_between() {
        // For a lightly loaded filter (the state in which pollution happens),
        // the Section 4 ordering holds: pollution > forgery > deletion
        // (removing a *chosen* item needs an index overlap, which is rare
        // for large m).
        let (m, w, k) = (1 << 16, 1 << 14, 4u32);
        let ranked = rank_attacks(m, w, k);
        assert_eq!(ranked[0].0, AttackKind::Pollution);
        assert_eq!(ranked[2].0, AttackKind::Deletion);
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn latency_query_peaks_below_full() {
        let m = 1000;
        let k = 4;
        assert_eq!(latency_query(m, 0, k), 0.0);
        assert_eq!(latency_query(m, m, k), 0.0);
        assert!(latency_query(m, 750, k) > 0.0);
    }

    #[test]
    fn expected_trials_is_reciprocal() {
        assert_eq!(expected_trials(0.5), 2.0);
        assert_eq!(expected_trials(1.0), 1.0);
        let p = false_positive_forgery(3200, 1600, 4);
        assert!((expected_trials(p) - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn expected_trials_rejects_zero() {
        expected_trials(0.0);
    }
}

//! Corrected false-positive analysis for cache-line *blocked* Bloom filters.
//!
//! A blocked filter (Putze, Sanders & Singler, "Cache-, Hash- and
//! Space-Efficient Bloom Filters", JEA 2009) confines all `k` bits of an item
//! to one cache-line-sized block chosen by a first hash. Queries touch a
//! single cache line instead of `k`, which is why the variant dominates the
//! performance lab — but the textbook formula `f = (1 - e^{-kn/m})^k` now
//! *undershoots* the truth: items are distributed over blocks binomially, so
//! some blocks carry more than the average load `n·B/m` and their local
//! false-positive probability grows super-linearly.
//!
//! The corrected formula below models each block as an independent `B`-bit
//! Bloom filter whose load `J` is Poisson-distributed with mean
//! `λ = n·B/m` (the binomial limit for many blocks), and mixes the exact
//! per-load probability over that distribution:
//!
//! `f_blocked = Σ_j Poisson_λ(j) · f_exact(B, j, k)`
//!
//! The same mixture yields the pollution trajectory under the paper's
//! chosen-insertion adversary: every crafted item sets `k` fresh bits inside
//! one block, so adversarial load concentrates exactly like honest load does
//! — the attacks carry over to the fast variant unchanged.

use crate::false_positive;

/// Exact false-positive probability of one `block_bits`-bit block holding `j`
/// items, each setting `k` *distinct* bits (the register-blocked probing used
/// by `evilbloom-filters::BlockedBloomFilter` guarantees distinctness).
///
/// With distinct bits per item the zero-probability per bit after `j` items
/// is `(1 - k/B)^j`, marginally tighter than the independent-bit
/// `(1 - 1/B)^{kj}`; both agree to `O(k²/B²)` and we use the distinct-bit
/// form because it matches the implementation.
pub fn block_false_positive(block_bits: u64, j: u64, k: u32) -> f64 {
    assert!(block_bits > 0, "block size must be positive");
    assert!(u64::from(k) <= block_bits, "cannot set more distinct bits than the block holds");
    if j == 0 || k == 0 {
        return 0.0;
    }
    let p_zero = (1.0 - k as f64 / block_bits as f64).powf(j as f64);
    (1.0 - p_zero).powi(k as i32)
}

/// Corrected false-positive probability of a blocked Bloom filter of `m`
/// total bits (a whole number of `block_bits`-bit blocks) after `n` honest
/// insertions with `k` bits per item: the Poisson mixture of the per-block
/// probability over the block-load distribution.
///
/// The sum runs over a `±12σ` window around the mean load with the Poisson
/// pmf evaluated in log space (a naive `e^{-λ}`-seeded recurrence underflows
/// to an all-zero pmf once `λ ≳ 745`); the neglected tail mass is below
/// `1e-12`, bounding the absolute truncation error by the same amount since
/// each mixed term is at most 1.
pub fn blocked_false_positive(m: u64, n: u64, k: u32, block_bits: u64) -> f64 {
    assert!(m > 0 && block_bits > 0, "filter and block size must be positive");
    assert!(m.is_multiple_of(block_bits), "m must be a whole number of blocks");
    if n == 0 || k == 0 {
        return 0.0;
    }
    let lambda = n as f64 * block_bits as f64 / m as f64;
    poisson_mixture(lambda, |j| block_false_positive(block_bits, j, k))
}

/// `Σ_j Poisson_λ(j) · term(j)` over the `±12σ` window, log-space pmf.
fn poisson_mixture(lambda: f64, term: impl Fn(u64) -> f64) -> f64 {
    let j_max = (lambda + 12.0 * lambda.sqrt() + 40.0).ceil() as u64;
    let ln_lambda = lambda.ln();
    let mut ln_factorial = 0.0f64;
    let mut f = 0.0;
    for j in 0..=j_max {
        if j > 0 {
            ln_factorial += (j as f64).ln();
        }
        let ln_pmf = -lambda + j as f64 * ln_lambda - ln_factorial;
        if ln_pmf > -745.0 {
            f += ln_pmf.exp() * term(j);
        }
    }
    f.min(1.0)
}

/// How much worse the blocked layout is than an unblocked filter of the same
/// `(m, n, k)`: `f_blocked / f_standard`. Always ≥ 1 for non-trivial loads —
/// the price of the one-cache-line hot path, which the Performance lab trades
/// against the measured speedup.
pub fn blocked_fpp_inflation(m: u64, n: u64, k: u32, block_bits: u64) -> f64 {
    let standard = false_positive::false_positive_exact(m, n, k);
    if standard == 0.0 {
        return 1.0;
    }
    blocked_false_positive(m, n, k, block_bits) / standard
}

/// The blocked filter's pollution trajectory under the chosen-insertion
/// adversary of Section 4.1: `polluted` crafted items each set `k` fresh bits
/// inside the block their pair selects, on top of `honest` uniform items.
/// Crafted load concentrates per block exactly like honest load (the
/// adversary cannot choose the block without also changing the in-block
/// bits), so the mixture applies with the combined insertion count and a
/// per-item weight-gain floor of `k` for the crafted fraction.
///
/// Returned as a conservative (upper) estimate: crafted items never collide
/// with already-set bits, honest items may.
pub fn blocked_adversarial_false_positive(
    m: u64,
    honest: u64,
    polluted: u64,
    k: u32,
    block_bits: u64,
) -> f64 {
    assert!(m.is_multiple_of(block_bits), "m must be a whole number of blocks");
    let blocks = m / block_bits;
    // Crafted items raise the average block load like honest ones, but each
    // is guaranteed k fresh bits: model them as honest items on a filter
    // whose per-block zero-probability already accounts for the guaranteed
    // k-bit gain, i.e. treat the polluted fill as additive.
    let polluted_bits_per_block = polluted as f64 * k as f64 / blocks as f64;
    if honest == 0 {
        return mixed_block_fpp(block_bits, 0, k, polluted_bits_per_block);
    }
    let lambda = honest as f64 * block_bits as f64 / m as f64;
    poisson_mixture(lambda, |j| mixed_block_fpp(block_bits, j, k, polluted_bits_per_block))
}

/// Per-block false-positive probability with `j` honest items plus
/// `polluted_bits` guaranteed-fresh adversarial bits.
fn mixed_block_fpp(block_bits: u64, j: u64, k: u32, polluted_bits: f64) -> f64 {
    let b = block_bits as f64;
    let honest_fill = 1.0 - (1.0 - k as f64 / b).powf(j as f64);
    let fill = (honest_fill + polluted_bits / b).min(1.0);
    fill.powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u64 = 512;

    #[test]
    fn empty_filter_never_false_positives() {
        assert_eq!(blocked_false_positive(1 << 16, 0, 4, B), 0.0);
        assert_eq!(block_false_positive(B, 0, 4), 0.0);
    }

    #[test]
    fn blocked_fpp_exceeds_standard_fpp() {
        // The whole point of the correction: block-load variance inflates the
        // false-positive probability above the unblocked formula.
        for &(m, n, k) in
            &[(1u64 << 16, 5_000u64, 5u32), (1 << 20, 100_000, 7), (1 << 18, 20_000, 4)]
        {
            let blocked = blocked_false_positive(m, n, k, B);
            let standard = false_positive::false_positive_exact(m, n, k);
            assert!(blocked > standard, "m={m} n={n} k={k}: {blocked} <= {standard}");
            assert!(blocked_fpp_inflation(m, n, k, B) > 1.0);
            // …but not absurdly so at moderate loads.
            assert!(blocked < standard * 10.0, "m={m}: inflation too large ({blocked}/{standard})");
        }
    }

    #[test]
    fn mixture_converges_to_block_formula_for_single_block() {
        // One block: the Poisson mixture with λ = n still spreads the load,
        // but its mean-load term dominates; sanity-check it brackets the
        // deterministic-load value within a factor accounted by variance.
        let f_mix = blocked_false_positive(B, 40, 4, B);
        let f_det = block_false_positive(B, 40, 4);
        assert!(f_mix > 0.5 * f_det && f_mix < 5.0 * f_det, "mix {f_mix} det {f_det}");
    }

    #[test]
    fn inflation_shrinks_as_load_grows() {
        let low = blocked_fpp_inflation(1 << 18, 10_000, 5, B);
        let high = blocked_fpp_inflation(1 << 18, 30_000, 5, B);
        assert!(
            high < low,
            "relative inflation shrinks as both probabilities rise: {low} -> {high}"
        );
        assert!(low > 1.0 && high > 1.0);
    }

    #[test]
    fn adversarial_trajectory_dominates_honest() {
        let (m, k) = (1u64 << 16, 4u32);
        let honest_only = blocked_false_positive(m, 3_000, k, B);
        let with_pollution = blocked_adversarial_false_positive(m, 3_000, 1_000, k, B);
        assert!(with_pollution > honest_only, "{with_pollution} <= {honest_only}");
        // No pollution degenerates to the honest mixture.
        let degenerate = blocked_adversarial_false_positive(m, 3_000, 0, k, B);
        assert!((degenerate - honest_only).abs() < 1e-9);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for n in [0u64, 100, 10_000, 1_000_000] {
            let f = blocked_false_positive(1 << 16, n, 6, B);
            assert!((0.0..=1.0).contains(&f), "n={n}: {f}");
        }
        assert!(blocked_false_positive(1 << 16, 10_000_000, 6, B) > 0.999);
    }

    #[test]
    #[should_panic(expected = "whole number of blocks")]
    fn ragged_block_count_rejected() {
        blocked_false_positive(1000, 10, 4, B);
    }
}

//! Domain of application of cryptographic hash functions — Figure 9.
//!
//! With digest recycling, one call to an `l`-bit hash covers a Bloom filter
//! as long as `k * ceil(log2 m) <= l`. Figure 9 plots the required bits
//! `k_opt * ceil(log2 m)` as a function of the filter size (up to 1 GByte)
//! for the optimal `k` of several target false-positive probabilities, with
//! the digest sizes of SHA-1/256/384/512 as horizontal thresholds.

/// Digest sizes (bits) of the functions drawn as thresholds in Figure 9.
pub const FIGURE9_DIGEST_SIZES: [(&str, u32); 4] =
    [("SHA-1", 160), ("SHA-256", 256), ("SHA-384", 384), ("SHA-512", 512)];

/// Optimal `k` for a filter of `m` bits holding the number of items that
/// makes `f` the optimal false-positive probability, i.e.
/// `k_opt = -log2(f)` (independent of `m` at the optimum).
pub fn optimal_k_for_target(f: f64) -> u32 {
    assert!(f > 0.0 && f < 1.0, "target probability must be in (0, 1)");
    (-f.log2()).round().max(1.0) as u32
}

/// Digest bits required to derive all indexes of one item for a filter of
/// `m_bits` bits at target probability `f`: `k_opt * ceil(log2 m)`.
pub fn required_digest_bits(m_bits: u64, f: f64) -> u32 {
    assert!(m_bits > 1, "filter must have at least two bits");
    let k = optimal_k_for_target(f);
    let index_bits = 64 - (m_bits - 1).leading_zeros();
    k * index_bits
}

/// Whether a single digest of `digest_bits` suffices (no second hash call)
/// for a filter of `m_bits` bits at target probability `f`.
pub fn single_call_sufficient(digest_bits: u32, m_bits: u64, f: f64) -> bool {
    required_digest_bits(m_bits, f) <= digest_bits
}

/// Number of digest invocations needed with recycling for the `(m, f)` point.
pub fn calls_with_recycling(digest_bits: u32, m_bits: u64, f: f64) -> u32 {
    let k = optimal_k_for_target(f);
    let index_bits = 64 - (m_bits - 1).leading_zeros();
    if index_bits > digest_bits {
        return u32::MAX;
    }
    let per_call = digest_bits / index_bits;
    k.div_ceil(per_call)
}

/// One row of the Figure 9 data: the required bits for a filter of
/// `m_megabytes` MBytes at each of the paper's four target probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure9Row {
    /// Filter size in megabytes (as on the figure's x axis).
    pub m_megabytes: u64,
    /// Required digest bits for f = 2^-5.
    pub bits_f5: u32,
    /// Required digest bits for f = 2^-10.
    pub bits_f10: u32,
    /// Required digest bits for f = 2^-15.
    pub bits_f15: u32,
    /// Required digest bits for f = 2^-20.
    pub bits_f20: u32,
}

/// Generates the Figure 9 series for filter sizes from 1 MByte up to
/// `max_megabytes` in steps of `step_megabytes`.
pub fn figure9_series(max_megabytes: u64, step_megabytes: u64) -> Vec<Figure9Row> {
    assert!(step_megabytes > 0, "step must be positive");
    let mut rows = Vec::new();
    let mut mb = step_megabytes;
    while mb <= max_megabytes {
        let m_bits = mb * 8 * 1024 * 1024;
        rows.push(Figure9Row {
            m_megabytes: mb,
            bits_f5: required_digest_bits(m_bits, 2f64.powi(-5)),
            bits_f10: required_digest_bits(m_bits, 2f64.powi(-10)),
            bits_f15: required_digest_bits(m_bits, 2f64.powi(-15)),
            bits_f20: required_digest_bits(m_bits, 2f64.powi(-20)),
        });
        mb += step_megabytes;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_k_is_minus_log2_f() {
        assert_eq!(optimal_k_for_target(2f64.powi(-5)), 5);
        assert_eq!(optimal_k_for_target(2f64.powi(-10)), 10);
        assert_eq!(optimal_k_for_target(2f64.powi(-15)), 15);
        assert_eq!(optimal_k_for_target(2f64.powi(-20)), 20);
    }

    #[test]
    fn paper_claim_sha512_covers_f15_up_to_1_gbyte() {
        // "A single call to SHA-512 ... is enough to compute any Bloom filter
        // with optimal parameters for f >= 2^-15 and m smaller than one GByte."
        let one_gbyte_bits = 8u64 * 1024 * 1024 * 1024;
        for f in [2f64.powi(-5), 2f64.powi(-10), 2f64.powi(-15)] {
            assert!(single_call_sufficient(512, one_gbyte_bits, f), "f = {f}");
        }
        // For f = 2^-20 several calls are needed.
        assert!(!single_call_sufficient(512, one_gbyte_bits, 2f64.powi(-20)));
        assert!(calls_with_recycling(512, one_gbyte_bits, 2f64.powi(-20)) >= 2);
    }

    #[test]
    fn sha1_only_covers_small_filters_at_low_k() {
        // SHA-1 (160 bits) with f = 2^-10 (k = 10) covers only filters with
        // index width <= 16 bits, i.e. m <= 65536 bits = 8 KB.
        assert!(single_call_sufficient(160, 1 << 16, 2f64.powi(-10)));
        assert!(!single_call_sufficient(160, 1 << 17, 2f64.powi(-10)));
    }

    #[test]
    fn required_bits_grow_with_m_and_k() {
        let small = required_digest_bits(1 << 20, 2f64.powi(-5));
        let bigger_m = required_digest_bits(1 << 30, 2f64.powi(-5));
        let bigger_k = required_digest_bits(1 << 20, 2f64.powi(-20));
        assert!(bigger_m > small);
        assert!(bigger_k > small);
        assert_eq!(small, 5 * 20);
        assert_eq!(bigger_m, 5 * 30);
        assert_eq!(bigger_k, 20 * 20);
    }

    #[test]
    fn figure9_series_shape() {
        let rows = figure9_series(1024, 128);
        assert_eq!(rows.len(), 8);
        // Curves are ordered by k and non-decreasing in m.
        for row in &rows {
            assert!(row.bits_f5 < row.bits_f10);
            assert!(row.bits_f10 < row.bits_f15);
            assert!(row.bits_f15 < row.bits_f20);
        }
        for pair in rows.windows(2) {
            assert!(pair[0].bits_f20 <= pair[1].bits_f20);
        }
        // The largest point stays within the figure's y range (<= 700 bits).
        assert!(rows.last().expect("non-empty").bits_f20 <= 700);
    }

    #[test]
    fn tiny_digest_cannot_host_an_index() {
        assert_eq!(calls_with_recycling(16, 1 << 30, 2f64.powi(-5)), u32::MAX);
    }
}

//! Worst-case (adversarial) false-positive analysis — Sections 4.1 and 8.1.
//!
//! A chosen-insertion adversary crafts every item so that all `k` of its
//! indexes land on previously unset bits. After `n` such insertions exactly
//! `nk` bits are set and the false-positive probability becomes
//! `f_adv = (nk/m)^k` (Equation (7)). Section 8.1 derives the parameters a
//! developer should use if she wants to minimise *that* quantity instead of
//! the honest-case one.

/// Adversarial false-positive probability after `n` chosen insertions —
/// Equation (7): `f_adv = (nk/m)^k`, capped at 1 once the filter saturates.
pub fn adversarial_false_positive(m: u64, n: u64, k: u32) -> f64 {
    assert!(m > 0, "filter size must be positive");
    if k == 0 {
        return 0.0;
    }
    let fill = ((n as f64) * (k as f64) / m as f64).min(1.0);
    fill.powi(k as i32)
}

/// Number of set bits after `n` chosen insertions (each insertion sets `k`
/// fresh bits until the filter saturates).
pub fn adversarial_set_bits(m: u64, n: u64, k: u32) -> u64 {
    (n.saturating_mul(u64::from(k))).min(m)
}

/// The number of hash functions that minimises the adversarial false-positive
/// probability — Equation (9): `k_adv_opt = m / (e n)`.
pub fn adversarial_optimal_k(m: u64, n: u64) -> f64 {
    assert!(n > 0, "capacity must be positive");
    m as f64 / (core::f64::consts::E * n as f64)
}

/// `adversarial_optimal_k` rounded to the nearest usable (>= 1) integer.
pub fn adversarial_optimal_k_rounded(m: u64, n: u64) -> u32 {
    adversarial_optimal_k(m, n).round().max(1.0) as u32
}

/// The adversarial false-positive probability achieved at `k_adv_opt` —
/// Equation (10): `f_adv_opt = e^{-m/(e n)}`.
pub fn adversarial_optimal_false_positive(m: u64, n: u64) -> f64 {
    assert!(n > 0, "capacity must be positive");
    (-(m as f64) / (core::f64::consts::E * n as f64)).exp()
}

/// The *honest* false-positive probability obtained when the developer
/// deploys `k = k_adv_opt` — Equations (11)–(12):
/// `f = (1 - e^{-1/e})^{m/(ne)}`, i.e. `ln f = -0.433 m/n`.
pub fn honest_false_positive_at_adversarial_k(m: u64, n: u64) -> f64 {
    assert!(n > 0, "capacity must be positive");
    let exponent = m as f64 / (n as f64 * core::f64::consts::E);
    (1.0 - (-1.0 / core::f64::consts::E).exp()).powf(exponent)
}

/// Ratio `k_opt / k_adv_opt = e ln 2 ≈ 1.88` (Section 8.1).
pub fn k_ratio() -> f64 {
    core::f64::consts::E * core::f64::consts::LN_2
}

/// Ratio `f_adv-resistant honest FPP / f_opt` per unit of `m/n`:
/// `(f / f_opt)^{n/m} = 1.05` (Section 8.1). Returns the full ratio for the
/// given `m` and `n`, i.e. `1.05^{m/n}`.
pub fn false_positive_penalty(m: u64, n: u64) -> f64 {
    let honest_at_adv = honest_false_positive_at_adversarial_k(m, n);
    let f_opt = crate::false_positive::optimal_false_positive(m, n);
    honest_at_adv / f_opt
}

/// Filter-size ratio `m'/m` when the developer keeps the false-positive
/// probability delivered by the adversary-resistant design (Equation (12))
/// but re-derives the size from the classic formula (Equation (3)).
///
/// The closed form is `m'/m = 0.433 / (ln 2)^2 ≈ 0.90`. The paper reports
/// `4.8` for this ratio, a value only reproducible if `(log10 2)^2` is used
/// in place of `(ln 2)^2`; EXPERIMENTS.md discusses the discrepancy. The
/// qualitative countermeasure message (worst-case parameters cost filter
/// size and/or false-positive rate) is unaffected.
pub fn size_ratio_same_fpp() -> f64 {
    0.433 / core::f64::consts::LN_2.powi(2)
}

/// The `m'/m = 4.8` figure as printed in the paper (Section 8.1), i.e. the
/// same ratio computed with `(log10 2)^2`. Kept so the experiment harness can
/// show both the reported and the re-derived value side by side.
pub fn size_ratio_as_reported() -> f64 {
    0.433 / core::f64::consts::LOG10_2.powi(2)
}

/// Number of chosen insertions needed to reach a target false-positive
/// probability `f_target` under the adversarial model: the smallest `n` with
/// `(nk/m)^k >= f_target`.
pub fn insertions_to_reach(m: u64, k: u32, f_target: f64) -> u64 {
    assert!(k > 0, "k must be positive");
    assert!((0.0..=1.0).contains(&f_target), "target must be a probability");
    let fill_needed = f_target.powf(1.0 / k as f64);
    ((fill_needed * m as f64) / k as f64).ceil() as u64
}

/// Expected number of *random* (honest) insertions needed to reach the same
/// target false-positive probability, for comparison with
/// [`insertions_to_reach`].
pub fn honest_insertions_to_reach(m: u64, k: u32, f_target: f64) -> u64 {
    assert!(k > 0, "k must be positive");
    assert!((0.0..1.0).contains(&f_target), "target must be a probability below 1");
    let fill_needed = f_target.powf(1.0 / k as f64);
    // fill = 1 - e^{-kn/m}  =>  n = -m ln(1 - fill) / k
    ((-(m as f64) * (1.0 - fill_needed).ln()) / k as f64).ceil() as u64
}

/// Number of items an adversary needs to fully saturate the filter: `m/k`
/// (each crafted item sets `k` fresh bits).
pub fn adversarial_saturation_items(m: u64, k: u32) -> u64 {
    assert!(k > 0, "k must be positive");
    m / u64::from(k)
}

/// Expected number of *random* insertions needed to saturate the filter,
/// from the coupon-collector problem with `k` coupons per draw:
/// roughly `m ln m / k`.
pub fn random_saturation_items(m: u64, k: u32) -> u64 {
    assert!(k > 0, "k must be positive");
    ((m as f64) * (m as f64).ln() / k as f64).floor() as u64
}

/// Birthday-paradox threshold: roughly the first `sqrt(m)/k` chosen items do
/// not even require a forgery search because random items rarely collide
/// before that point (Section 4.1, discussion of Figure 3).
pub fn birthday_free_insertions(m: u64, k: u32) -> u64 {
    assert!(k > 0, "k must be positive");
    ((m as f64).sqrt() / k as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::false_positive::{optimal_false_positive, optimal_k};

    #[test]
    fn figure3_headline_numbers() {
        // m = 3200, k = 4: after 600 chosen insertions the paper reports
        // f_adv ≈ 0.316, versus f_opt = 0.077 for honest insertions.
        let f_adv = adversarial_false_positive(3200, 600, 4);
        assert!((f_adv - 0.316).abs() < 0.01, "f_adv {f_adv}");
        let f_opt = optimal_false_positive(3200, 600);
        assert!(f_adv > 4.0 * f_opt);
    }

    #[test]
    fn figure3_threshold_crossing() {
        // The paper: the adversary reaches the 0.077 threshold after only 422
        // chosen insertions (vs 600 honest ones).
        let n_adv = insertions_to_reach(3200, 4, 0.077);
        assert!((420..=424).contains(&n_adv), "n_adv {n_adv}");
        let n_honest = honest_insertions_to_reach(3200, 4, 0.077);
        assert!((595..=605).contains(&n_honest), "n_honest {n_honest}");
    }

    #[test]
    fn adversary_sets_38_percent_more_bits() {
        // At the honest optimum half the bits are set (0.72 nk); the
        // adversary sets nk, i.e. ~38% more.
        let m = 9585u64;
        let n = 1000u64;
        let k = optimal_k(m, n);
        let honest_bits = m as f64 / 2.0;
        let adversarial_bits = n as f64 * k;
        let increase = adversarial_bits / honest_bits - 1.0;
        assert!((increase - 0.386).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn saturation_gain_is_log_m() {
        let (m, k) = (1u64 << 20, 4u32);
        let adv = adversarial_saturation_items(m, k);
        let rnd = random_saturation_items(m, k);
        let gain = rnd as f64 / adv as f64;
        assert!((gain - (m as f64).ln()).abs() / (m as f64).ln() < 0.01, "gain {gain}");
    }

    #[test]
    fn adversarial_optimum_formulas() {
        let (m, n) = (3200u64, 600u64);
        let k_adv = adversarial_optimal_k(m, n);
        assert!((k_adv - 3200.0 / (core::f64::consts::E * 600.0)).abs() < 1e-12);
        let f_adv_opt = adversarial_optimal_false_positive(m, n);
        assert!((f_adv_opt - (-k_adv).exp()).abs() < 1e-12);
        // The adversarial FPP at k_adv_opt must indeed be minimal among
        // nearby integer choices of k.
        let k_round = adversarial_optimal_k_rounded(m, n);
        let at_opt = adversarial_false_positive(m, n, k_round);
        for k in [k_round.saturating_sub(1).max(1), k_round + 1, k_round + 2] {
            assert!(adversarial_false_positive(m, n, k) >= at_opt * 0.999, "k={k}");
        }
    }

    #[test]
    fn k_ratio_is_e_ln2() {
        assert!((k_ratio() - 1.88).abs() < 0.01);
        // And it really is the ratio of the two optima.
        let (m, n) = (100_000u64, 5_000u64);
        let ratio = optimal_k(m, n) / adversarial_optimal_k(m, n);
        assert!((ratio - k_ratio()).abs() < 1e-9);
    }

    #[test]
    fn penalty_is_1_05_per_bit_per_item() {
        let (m, n) = (10_000u64, 1_000u64);
        let penalty = false_positive_penalty(m, n);
        let per_unit = penalty.powf(n as f64 / m as f64);
        assert!((per_unit - 1.05).abs() < 0.01, "per-unit penalty {per_unit}");
    }

    #[test]
    fn size_ratios_match_their_derivations() {
        assert!((size_ratio_same_fpp() - 0.90).abs() < 0.01, "{}", size_ratio_same_fpp());
        assert!((size_ratio_as_reported() - 4.8).abs() < 0.05, "{}", size_ratio_as_reported());
    }

    #[test]
    fn ln_honest_at_adversarial_k_is_minus_0_433_m_over_n() {
        let (m, n) = (20_000u64, 1_000u64);
        let f = honest_false_positive_at_adversarial_k(m, n);
        let coefficient = -f.ln() / (m as f64 / n as f64);
        assert!((coefficient - 0.433).abs() < 0.005, "coefficient {coefficient}");
    }

    #[test]
    fn saturated_filter_always_false_positives() {
        assert_eq!(adversarial_false_positive(100, 1000, 4), 1.0);
        assert_eq!(adversarial_set_bits(100, 1000, 4), 100);
    }

    #[test]
    fn birthday_threshold_for_figure3() {
        // sqrt(3200)/4 ≈ 14: the first ~14 items need no forgery effort.
        assert_eq!(birthday_free_insertions(3200, 4), 15);
    }

    #[test]
    fn zero_k_means_no_false_positives() {
        assert_eq!(adversarial_false_positive(100, 10, 0), 0.0);
    }
}

//! Compound false-positive probability of scalable Bloom filters — Section 6.
//!
//! Dablooms stacks Bloom filters: the `i`-th sub-filter targets
//! `f_i = f_0 * r^i` and the compound probability over `λ` sub-filters is
//! `F = 1 - Π_{i}(1 - f_i)` (Almeida et al.). A pollution attack drives the
//! attacked sub-filters to their adversarial probability instead of `f_i`,
//! which is what Figure 8 plots.

/// Per-sub-filter target false-positive probability `f_i = f_0 * r^i`.
pub fn sub_filter_target(f0: f64, r: f64, i: u32) -> f64 {
    assert!(f0 > 0.0 && f0 < 1.0, "f0 must be a probability");
    assert!(r > 0.0 && r <= 1.0, "tightening ratio must be in (0, 1]");
    f0 * r.powi(i as i32)
}

/// Compound false-positive probability `F = 1 - Π (1 - f_i)` of a stack of
/// sub-filters with the given individual probabilities.
pub fn compound_false_positive(per_filter: &[f64]) -> f64 {
    let mut survive = 1.0f64;
    for &f in per_filter {
        assert!((0.0..=1.0).contains(&f), "per-filter probability out of range");
        survive *= 1.0 - f;
    }
    1.0 - survive
}

/// Compound probability of an *unattacked* Dablooms-style stack of `lambda`
/// sub-filters with base probability `f0` and tightening ratio `r`.
pub fn compound_unattacked(f0: f64, r: f64, lambda: u32) -> f64 {
    let per: Vec<f64> = (0..lambda).map(|i| sub_filter_target(f0, r, i)).collect();
    compound_false_positive(&per)
}

/// Compound probability when the **last** `polluted` of the `lambda`
/// sub-filters have been driven to `f_attacked` by a chosen-insertion
/// adversary while the others stay at their targets — the "partial attacks"
/// family of curves in Figure 8.
pub fn compound_with_last_polluted(
    f0: f64,
    r: f64,
    lambda: u32,
    polluted: u32,
    f_attacked: f64,
) -> f64 {
    assert!(polluted <= lambda, "cannot pollute more sub-filters than exist");
    let per: Vec<f64> = (0..lambda)
        .map(|i| if i >= lambda - polluted { f_attacked } else { sub_filter_target(f0, r, i) })
        .collect();
    compound_false_positive(&per)
}

/// Compound probability when **all** sub-filters are polluted to `f_attacked`
/// — the "full attack" curve of Figure 8 as a function of how many
/// sub-filters exist so far.
pub fn compound_fully_polluted(lambda: u32, f_attacked: f64) -> f64 {
    compound_false_positive(&vec![f_attacked; lambda as usize])
}

/// Adversarial per-sub-filter probability for a sub-filter sized for
/// `capacity` items at target `f_target` with `k` hash functions, once the
/// adversary has inserted `capacity` crafted items: `(capacity * k / m)^k`.
pub fn attacked_sub_filter_probability(capacity: u64, f_target: f64, k: u32) -> f64 {
    let m = crate::false_positive::required_bits_for(capacity, f_target);
    crate::worst_case::adversarial_false_positive(m, capacity, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: f64 = 0.01;
    const R: f64 = 0.9;
    const LAMBDA: u32 = 10;

    #[test]
    fn sub_filter_targets_decrease() {
        let mut last = 1.0;
        for i in 0..LAMBDA {
            let f = sub_filter_target(F0, R, i);
            assert!(f < last);
            last = f;
        }
        assert!((sub_filter_target(F0, R, 0) - 0.01).abs() < 1e-12);
        assert!((sub_filter_target(F0, R, 9) - 0.01 * 0.9f64.powi(9)).abs() < 1e-12);
    }

    #[test]
    fn unattacked_compound_is_small() {
        // Σ f_i ≈ f0 (1 - r^λ)/(1 - r) ≈ 0.065; F is slightly below that.
        let f = compound_unattacked(F0, R, LAMBDA);
        assert!(f > 0.06 && f < 0.07, "F {f}");
    }

    #[test]
    fn full_attack_dominates_partial_attacks() {
        let f_attacked = attacked_sub_filter_probability(10_000, F0, 7);
        let full = compound_fully_polluted(LAMBDA, f_attacked);
        for polluted in 1..=LAMBDA {
            let partial = compound_with_last_polluted(F0, R, LAMBDA, polluted, f_attacked);
            assert!(full >= partial - 1e-12, "polluted={polluted}");
        }
    }

    #[test]
    fn figure8_shape() {
        // Figure 8: no attack ≈ 0.065; the full attack exceeds 0.5 once all
        // ten sub-filters are polluted; partial attacks interpolate.
        let f_attacked = attacked_sub_filter_probability(10_000, F0, 7);
        assert!(f_attacked > 0.05, "attacked sub-filter {f_attacked}");
        let no_attack = compound_unattacked(F0, R, LAMBDA);
        let one = compound_with_last_polluted(F0, R, LAMBDA, 1, f_attacked);
        let five = compound_with_last_polluted(F0, R, LAMBDA, 5, f_attacked);
        let ten = compound_with_last_polluted(F0, R, LAMBDA, 10, f_attacked);
        assert!(no_attack < one && one < five && five < ten);
        assert!(ten > 0.4, "full pollution compound {ten}");
    }

    #[test]
    fn compound_of_empty_stack_is_zero() {
        assert_eq!(compound_false_positive(&[]), 0.0);
    }

    #[test]
    fn compound_with_certain_filter_is_one() {
        assert_eq!(compound_false_positive(&[0.1, 1.0, 0.2]), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot pollute more")]
    fn polluting_too_many_sub_filters_panics() {
        compound_with_last_polluted(F0, R, 3, 4, 0.5);
    }
}

//! False-positive probability of a Bloom filter under *honest* (uniform)
//! insertions — Section 3 of the paper.

/// Exact false-positive probability after `n` uniform insertions into a
/// filter of `m` bits using `k` hash functions:
///
/// `f = (1 - (1 - 1/m)^{kn})^k`
pub fn false_positive_exact(m: u64, n: u64, k: u32) -> f64 {
    assert!(m > 0, "filter size must be positive");
    if n == 0 || k == 0 {
        return 0.0;
    }
    let one_minus = 1.0 - 1.0 / m as f64;
    let p_zero = one_minus.powf((k as f64) * (n as f64));
    (1.0 - p_zero).powi(k as i32)
}

/// The standard approximation `f ≈ (1 - e^{-kn/m})^k` — Equation (1) of the
/// paper, the formula "often used in software implementations".
pub fn false_positive_approx(m: u64, n: u64, k: u32) -> f64 {
    assert!(m > 0, "filter size must be positive");
    if n == 0 || k == 0 {
        return 0.0;
    }
    let exponent = -((k as f64) * (n as f64)) / m as f64;
    (1.0 - exponent.exp()).powi(k as i32)
}

/// False-positive probability of a filter whose current fraction of set bits
/// is `fill` (`wH(z)/m`), for a query with `k` indexes: `fill^k`.
///
/// This is the quantity an adversary manipulates: pollution raises `fill`
/// above the honest expectation.
pub fn false_positive_for_fill(fill: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&fill), "fill ratio must be within [0, 1]");
    fill.powi(k as i32)
}

/// Expected number of zero bits after `n` uniform insertions — Equation (4):
/// `E[X] = m * (1 - 1/m)^{kn} ≈ m e^{-kn/m}`.
pub fn expected_zero_bits(m: u64, n: u64, k: u32) -> f64 {
    let one_minus = 1.0 - 1.0 / m as f64;
    m as f64 * one_minus.powf((k as f64) * (n as f64))
}

/// Expected fill ratio (fraction of set bits) after `n` uniform insertions.
pub fn expected_fill(m: u64, n: u64, k: u32) -> f64 {
    1.0 - expected_zero_bits(m, n, k) / m as f64
}

/// Azuma–Hoeffding concentration bound — Equation (5): the probability that
/// the number of zero bits deviates from its expectation by more than
/// `epsilon * m` is at most `2 e^{-2 m epsilon^2 / (nk)}`.
pub fn concentration_bound(m: u64, n: u64, k: u32, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    if n == 0 || k == 0 {
        return 0.0;
    }
    let exponent = -2.0 * (m as f64) * epsilon * epsilon / ((n as f64) * (k as f64));
    (2.0 * exponent.exp()).min(1.0)
}

/// Number of hash functions minimizing the honest false-positive probability
/// for given `m` and `n` — Equation (2): `k_opt = (m/n) ln 2`.
pub fn optimal_k(m: u64, n: u64) -> f64 {
    assert!(n > 0, "capacity must be positive");
    (m as f64 / n as f64) * core::f64::consts::LN_2
}

/// `optimal_k` rounded to the nearest usable (>= 1) integer.
pub fn optimal_k_rounded(m: u64, n: u64) -> u32 {
    optimal_k(m, n).round().max(1.0) as u32
}

/// The honest optimal false-positive probability — Equation (3):
/// `ln f_opt = -(m/n) (ln 2)^2`.
pub fn optimal_false_positive(m: u64, n: u64) -> f64 {
    assert!(n > 0, "capacity must be positive");
    (-(m as f64 / n as f64) * core::f64::consts::LN_2.powi(2)).exp()
}

/// Filter size needed to achieve a target false-positive probability `f` for
/// `n` items with optimal `k` (inverse of Equation (3)):
/// `m = -n ln f / (ln 2)^2`.
pub fn required_bits_for(n: u64, f: f64) -> u64 {
    assert!(n > 0, "capacity must be positive");
    assert!(f > 0.0 && f < 1.0, "target probability must be in (0, 1)");
    ((-(n as f64) * f.ln()) / core::f64::consts::LN_2.powi(2)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_close_to_exact_for_large_m() {
        let (m, n, k) = (1 << 20, 100_000, 7);
        let exact = false_positive_exact(m, n, k);
        let approx = false_positive_approx(m, n, k);
        assert!((exact - approx).abs() < 1e-6, "exact {exact} approx {approx}");
    }

    #[test]
    fn empty_filter_never_false_positives() {
        assert_eq!(false_positive_exact(1024, 0, 4), 0.0);
        assert_eq!(false_positive_approx(1024, 0, 4), 0.0);
    }

    #[test]
    fn paper_figure3_parameters() {
        // m = 3200, n = 600 gives k_opt ≈ 4 (the paper rounds 3.7 to 4) and
        // f_opt = 0.077.
        let k = optimal_k(3200, 600);
        assert!((k - 3.70).abs() < 0.01, "k_opt {k}");
        assert_eq!(optimal_k_rounded(3200, 600), 4);
        let f = optimal_false_positive(3200, 600);
        assert!((f - 0.077).abs() < 0.002, "f_opt {f}");
    }

    #[test]
    fn paper_squid_example() {
        // Squid: m = 5n+7 instead of the optimal 6n. For n = 200 the paper
        // reports f ≈ 0.09 instead of ≈ 0.03.
        let n = 200u64;
        let m_squid = 5 * n + 7;
        let f_squid = false_positive_approx(m_squid, n, 4);
        assert!((f_squid - 0.09).abs() < 0.01, "squid f {f_squid}");
        // With the "optimal" 6n-bit filter the probability drops noticeably
        // (the paper quotes 0.03; the standard approximation gives ~0.056 —
        // the qualitative factor-of-several gap is what the attack exploits).
        let m_opt = 6 * n;
        let k_opt = optimal_k_rounded(m_opt, n);
        let f_opt = false_positive_approx(m_opt, n, k_opt);
        assert!(f_opt < 0.06, "optimal f {f_opt}");
        assert!(f_squid / f_opt > 1.5, "squid sizing must be clearly worse");
    }

    #[test]
    fn fill_based_false_positive() {
        assert_eq!(false_positive_for_fill(0.0, 4), 0.0);
        assert_eq!(false_positive_for_fill(1.0, 4), 1.0);
        assert!((false_positive_for_fill(0.5, 4) - 0.0625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fill ratio must be within")]
    fn fill_out_of_range_panics() {
        false_positive_for_fill(1.5, 2);
    }

    #[test]
    fn expected_zeros_half_at_optimum() {
        // With optimal parameters the expected number of zeros is m/2.
        let (m, n) = (10_000u64, 1_000u64);
        let k = optimal_k_rounded(m, n);
        let zeros = expected_zero_bits(m, n, k);
        assert!((zeros / m as f64 - 0.5).abs() < 0.01, "zeros fraction {}", zeros / m as f64);
    }

    #[test]
    fn expected_fill_complements_zeros() {
        let (m, n, k) = (4096u64, 500u64, 4u32);
        let fill = expected_fill(m, n, k);
        let zeros = expected_zero_bits(m, n, k);
        assert!((fill + zeros / m as f64 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_bound_decreases_with_epsilon() {
        let (m, n, k) = (1_000_000u64, 1000u64, 5u32);
        let loose = concentration_bound(m, n, k, 0.05);
        let tight = concentration_bound(m, n, k, 0.1);
        assert!(tight < loose, "tight {tight} loose {loose}");
        assert!(loose < 1.0 && tight > 0.0);
    }

    #[test]
    fn required_bits_round_trip() {
        let n = 1_000_000u64;
        for &f in &[1.0 / 32.0, 2f64.powi(-10), 2f64.powi(-20)] {
            let m = required_bits_for(n, f);
            let achieved = optimal_false_positive(m, n);
            assert!(achieved <= f * 1.01, "m={m} achieved {achieved} target {f}");
        }
    }

    #[test]
    fn pybloom_table2_filter_size() {
        // Table 2: n = 10^6, f = 2^-10 creates a filter of about 2.48 MB.
        let m = required_bits_for(1_000_000, 2f64.powi(-10));
        let mbytes = m as f64 / 8.0 / 1e6;
        assert!((mbytes - 1.8).abs() < 0.05, "computed {mbytes} MB");
        // The paper's 2.48 MB corresponds to pyBloom's slightly different
        // sizing; the order of magnitude and shape is what matters here.
    }

    #[test]
    fn monotonic_in_insertions() {
        let mut last = 0.0;
        for n in (0..=600).step_by(50) {
            let f = false_positive_approx(3200, n, 4);
            assert!(f >= last);
            last = f;
        }
    }
}

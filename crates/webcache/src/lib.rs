//! # evilbloom-webcache
//!
//! A Squid-like pair of sibling cache proxies exchanging cache digests
//! (Section 7 of the paper).
//!
//! Two proxies serve a client. Each proxy keeps a cache of fetched objects
//! and periodically publishes a **cache digest** (a Bloom filter of its
//! cache keys, `m = 5n + 7`, `k = 4`, MD5-split). On a local miss a proxy
//! consults its sibling's digest: a hit means "ask the sibling first", which
//! costs one extra round trip; if the digest lied (false positive) the round
//! trip is wasted and the proxy still has to go to the origin.
//!
//! The attack: a malicious client asks proxy A to fetch crafted URLs chosen
//! to pollute A's next digest. Once the digest is exchanged, ordinary
//! requests through proxy B suffer a false-positive rate far above the
//! designed one, each costing a wasted sibling round trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::time::Duration;

use evilbloom_attacks::pollution::craft_polluting_items;
use evilbloom_attacks::SearchStats;
use evilbloom_filters::CacheDigest;
use evilbloom_urlgen::UrlGenerator;

/// Where a response ultimately came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Served from the proxy's own cache.
    LocalHit,
    /// Served by the sibling proxy after a digest hit.
    SiblingHit,
    /// Fetched from the origin server (including after a wasted sibling
    /// round trip).
    Origin {
        /// Whether a sibling round trip was wasted on a digest false
        /// positive before going to the origin.
        wasted_sibling_probe: bool,
    },
}

/// Latency accounting for a simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Where the object came from.
    pub source: ResponseSource,
    /// Total added latency of the request (sibling and origin round trips).
    pub latency: Duration,
}

/// A caching proxy.
#[derive(Debug, Clone)]
pub struct Proxy {
    name: String,
    cache: HashSet<String>,
    digest_of_sibling: Option<CacheDigest>,
}

impl Proxy {
    /// Creates an empty proxy.
    pub fn new(name: &str) -> Self {
        Proxy { name: name.to_owned(), cache: HashSet::new(), digest_of_sibling: None }
    }

    /// The proxy's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of objects in the local cache.
    pub fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    /// Whether the URL is in the local cache.
    pub fn has_cached(&self, url: &str) -> bool {
        self.cache.contains(url)
    }

    /// Stores a fetched object in the local cache.
    pub fn store(&mut self, url: &str) {
        self.cache.insert(url.to_owned());
    }

    /// Builds this proxy's cache digest from its current cache contents
    /// (what Squid does on its periodic digest rebuild).
    pub fn build_digest(&self) -> CacheDigest {
        CacheDigest::build(self.cache.iter())
    }

    /// Installs the sibling's most recent digest.
    pub fn install_sibling_digest(&mut self, digest: CacheDigest) {
        self.digest_of_sibling = Some(digest);
    }

    /// The sibling digest currently installed, if any.
    pub fn sibling_digest(&self) -> Option<&CacheDigest> {
        self.digest_of_sibling.as_ref()
    }
}

/// Network parameters of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Round-trip time between sibling proxies (the paper's setup: 10 ms).
    pub sibling_rtt: Duration,
    /// Round-trip time from a proxy to the origin server.
    pub origin_rtt: Duration,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            sibling_rtt: Duration::from_millis(10),
            origin_rtt: Duration::from_millis(80),
        }
    }
}

/// Counters accumulated by [`Deployment::request_via`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Requests served from the local cache.
    pub local_hits: u64,
    /// Requests served by the sibling after a digest hit.
    pub sibling_hits: u64,
    /// Requests that wasted a sibling round trip on a digest false positive.
    pub wasted_probes: u64,
    /// Requests that went to the origin without a sibling probe.
    pub direct_origin: u64,
    /// Total added latency across all requests.
    pub total_latency: Duration,
}

impl TrafficStats {
    /// Fraction of sibling probes that were wasted (digest false positives),
    /// relative to all requests that consulted the sibling digest and missed
    /// locally.
    pub fn false_positive_probe_rate(&self) -> f64 {
        let probes = self.sibling_hits + self.wasted_probes;
        if probes == 0 {
            0.0
        } else {
            self.wasted_probes as f64 / probes as f64
        }
    }
}

/// Two sibling proxies, an origin that can serve everything, and a client.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// First proxy (the one the attacker talks to in the Section 7 attack).
    pub proxy_a: Proxy,
    /// Second proxy (the one whose clients suffer the wasted round trips).
    pub proxy_b: Proxy,
    /// Network latency model.
    pub network: NetworkModel,
    stats: TrafficStats,
}

impl Deployment {
    /// Creates a deployment with empty caches.
    pub fn new(network: NetworkModel) -> Self {
        Deployment {
            proxy_a: Proxy::new("proxy-a"),
            proxy_b: Proxy::new("proxy-b"),
            network,
            stats: TrafficStats::default(),
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Exchanges cache digests between the two proxies (the periodic digest
    /// swap Squid performs).
    pub fn exchange_digests(&mut self) {
        let digest_a = self.proxy_a.build_digest();
        let digest_b = self.proxy_b.build_digest();
        self.proxy_a.install_sibling_digest(digest_b);
        self.proxy_b.install_sibling_digest(digest_a);
    }

    /// Issues a client GET for `url` through proxy A (`via_a = true`) or
    /// proxy B, following Squid's decision procedure: local cache → sibling
    /// digest → origin.
    pub fn request_via(&mut self, via_a: bool, url: &str) -> RequestOutcome {
        let network = self.network;
        let (local, sibling) = if via_a {
            (&mut self.proxy_a, &mut self.proxy_b)
        } else {
            (&mut self.proxy_b, &mut self.proxy_a)
        };

        if local.has_cached(url) {
            self.stats.local_hits += 1;
            return RequestOutcome { source: ResponseSource::LocalHit, latency: Duration::ZERO };
        }

        let digest_says_sibling_has_it =
            local.sibling_digest().map(|digest| digest.might_have("GET", url)).unwrap_or(false);

        if digest_says_sibling_has_it {
            if sibling.has_cached(url) {
                // Genuine sibling hit: one sibling RTT, object now cached
                // locally too.
                local.store(url);
                self.stats.sibling_hits += 1;
                self.stats.total_latency += network.sibling_rtt;
                return RequestOutcome {
                    source: ResponseSource::SiblingHit,
                    latency: network.sibling_rtt,
                };
            }
            // False positive: wasted sibling RTT, then origin fetch.
            local.store(url);
            self.stats.wasted_probes += 1;
            let latency = network.sibling_rtt + network.origin_rtt;
            self.stats.total_latency += latency;
            return RequestOutcome {
                source: ResponseSource::Origin { wasted_sibling_probe: true },
                latency,
            };
        }

        // Straight to the origin.
        local.store(url);
        self.stats.direct_origin += 1;
        self.stats.total_latency += network.origin_rtt;
        RequestOutcome {
            source: ResponseSource::Origin { wasted_sibling_probe: false },
            latency: network.origin_rtt,
        }
    }
}

/// The Section 7 attack: crafted URLs requested through proxy A so that A's
/// next cache digest is polluted.
#[derive(Debug, Clone)]
pub struct DigestPollution {
    /// The crafted URLs.
    pub urls: Vec<String>,
    /// Search cost accounting.
    pub stats: SearchStats,
}

/// Crafts `count` polluting URLs against the digest proxy A *would* publish
/// for its current cache plus the crafted URLs themselves.
///
/// Mirroring the paper's experiment, the crafted URLs are chosen against the
/// digest sized for the final cache contents (clean entries + `count`), so
/// that each crafted URL sets 4 fresh bits in the published digest.
pub fn craft_digest_pollution(proxy: &Proxy, count: usize) -> DigestPollution {
    // Build the digest the proxy would publish after caching `count` more
    // objects, then search for URLs that pollute it.
    let mut future_digest =
        CacheDigest::with_capacity(proxy.cached_objects() as u64 + count as u64);
    for url in proxy.cache.iter() {
        future_digest.add("GET", url);
    }
    let generator = UrlGenerator::new("squid-pollution");
    // The digest key is "GET <url>", so candidates must be full keys; wrap
    // the generator accordingly by searching over keys and stripping later.
    let plan =
        craft_polluting_items(&KeyedView { digest: &future_digest }, &generator, count, u64::MAX);
    DigestPollution { urls: plan.items, stats: plan.stats }
}

/// Adapter making a [`CacheDigest`] searchable over plain URLs (the attack
/// controls the URL; the method is always GET).
struct KeyedView<'a> {
    digest: &'a CacheDigest,
}

impl evilbloom_attacks::TargetFilter for KeyedView<'_> {
    fn m(&self) -> u64 {
        self.digest.size_bits()
    }

    fn k(&self) -> u32 {
        evilbloom_filters::cache_digest::SQUID_HASH_COUNT
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        let url = core::str::from_utf8(item).expect("generated URLs are UTF-8");
        self.digest.indexes_of("GET", url)
    }

    fn is_set(&self, index: u64) -> bool {
        self.digest.bits().get(index)
    }

    fn weight(&self) -> u64 {
        self.digest.bits().count_ones()
    }
}

/// Result of the end-to-end Squid experiment (Section 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquidExperimentReport {
    /// Digest size in bits after pollution.
    pub digest_bits: u64,
    /// Fraction of probe requests through proxy B that hit proxy A
    /// unnecessarily (digest false positives) in the *clean* deployment.
    pub clean_false_hit_rate: f64,
    /// The same fraction after pollution.
    pub polluted_false_hit_rate: f64,
    /// Added latency per wasted probe.
    pub wasted_probe_latency: Duration,
}

/// Runs the paper's Squid experiment: `clean_urls` genuine cache entries on
/// proxy A, `polluting_count` crafted URLs requested by the malicious
/// client, then `probe_count` fresh URLs requested through proxy B.
pub fn run_squid_experiment(
    clean_urls: usize,
    polluting_count: usize,
    probe_count: usize,
    network: NetworkModel,
) -> SquidExperimentReport {
    // Clean deployment baseline.
    let mut clean = Deployment::new(network);
    for i in 0..clean_urls {
        clean.proxy_a.store(&format!("http://origin.example/clean/{i}"));
    }
    clean.exchange_digests();
    for i in 0..probe_count {
        clean.request_via(false, &format!("http://elsewhere.example/probe/{i}"));
    }
    let clean_rate = clean.stats().wasted_probes as f64 / probe_count as f64;

    // Attacked deployment: same clean contents plus crafted URLs fetched via
    // proxy A by the malicious client.
    let mut attacked = Deployment::new(network);
    for i in 0..clean_urls {
        attacked.proxy_a.store(&format!("http://origin.example/clean/{i}"));
    }
    let pollution = craft_digest_pollution(&attacked.proxy_a, polluting_count);
    for url in &pollution.urls {
        attacked.request_via(true, url);
    }
    attacked.exchange_digests();
    let digest_bits = attacked.proxy_b.sibling_digest().expect("digest exchanged").size_bits();

    let before_probes = attacked.stats().wasted_probes;
    for i in 0..probe_count {
        attacked.request_via(false, &format!("http://elsewhere.example/probe/{i}"));
    }
    let polluted_rate =
        (attacked.stats().wasted_probes - before_probes) as f64 / probe_count as f64;

    SquidExperimentReport {
        digest_bits,
        clean_false_hit_rate: clean_rate,
        polluted_false_hit_rate: polluted_rate,
        wasted_probe_latency: network.sibling_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_and_sibling_hits_are_cheaper_than_origin() {
        let mut deployment = Deployment::new(NetworkModel::default());
        deployment.proxy_b.store("http://origin.example/shared");
        deployment.exchange_digests();

        // First request through A: digest points at B, genuine sibling hit.
        let outcome = deployment.request_via(true, "http://origin.example/shared");
        assert_eq!(outcome.source, ResponseSource::SiblingHit);
        assert_eq!(outcome.latency, Duration::from_millis(10));

        // Second request through A: now cached locally.
        let outcome = deployment.request_via(true, "http://origin.example/shared");
        assert_eq!(outcome.source, ResponseSource::LocalHit);
        assert_eq!(outcome.latency, Duration::ZERO);

        // A fresh URL goes straight to the origin.
        let outcome = deployment.request_via(true, "http://origin.example/fresh");
        assert_eq!(outcome.source, ResponseSource::Origin { wasted_sibling_probe: false });
        assert_eq!(outcome.latency, Duration::from_millis(80));
    }

    #[test]
    fn digest_false_positive_costs_an_extra_round_trip() {
        let mut deployment = Deployment::new(NetworkModel::default());
        for i in 0..200 {
            deployment.proxy_a.store(&format!("http://origin.example/{i}"));
        }
        deployment.exchange_digests();
        // Probe with many fresh URLs through B; roughly 9% of them (the
        // 5n+7 sizing) waste a sibling probe.
        for i in 0..3000 {
            deployment.request_via(false, &format!("http://probe.example/{i}"));
        }
        let stats = deployment.stats();
        assert!(stats.wasted_probes > 0);
        let rate = stats.wasted_probes as f64 / 3000.0;
        assert!((rate - 0.09).abs() < 0.05, "rate {rate}");
        // Each wasted probe added a sibling RTT on top of the origin RTT.
        let expected_extra = Duration::from_millis(10) * stats.wasted_probes as u32;
        let baseline = Duration::from_millis(80) * 3000;
        assert_eq!(stats.total_latency, baseline + expected_extra);
    }

    #[test]
    fn crafted_urls_pollute_the_published_digest() {
        let mut deployment = Deployment::new(NetworkModel::default());
        for i in 0..51 {
            deployment.proxy_a.store(&format!("http://origin.example/clean/{i}"));
        }
        let pollution = craft_digest_pollution(&deployment.proxy_a, 100);
        assert_eq!(pollution.urls.len(), 100);
        for url in &pollution.urls {
            deployment.request_via(true, url);
        }
        deployment.exchange_digests();
        let digest = deployment.proxy_b.sibling_digest().expect("digest installed");
        // 151 entries → 762 bits, the figure quoted in the paper.
        assert_eq!(digest.size_bits(), 762);
        // The crafted URLs drive the fill ratio well above the honest
        // expectation for 151 entries.
        assert!(digest.fill_ratio() > 0.55, "fill {}", digest.fill_ratio());
    }

    #[test]
    fn squid_experiment_reproduces_the_paper_gap() {
        // Paper: 79% false hits after pollution vs 40% clean, with 51 clean
        // URLs, 100 polluting URLs and 100 probes. We use more probes to
        // reduce variance; the clean-vs-polluted gap is the claim under test.
        let report = run_squid_experiment(51, 100, 2000, NetworkModel::default());
        assert_eq!(report.digest_bits, 762);
        // The paper reports 40% → 79% on 100 probes; with the textbook
        // false-positive model our clean baseline sits near the theoretical
        // ~9% and pollution multiplies it several-fold — the gap (pollution
        // makes unnecessary sibling hits far more common) is the claim.
        assert!(
            report.polluted_false_hit_rate > 2.5 * report.clean_false_hit_rate,
            "polluted {} vs clean {}",
            report.polluted_false_hit_rate,
            report.clean_false_hit_rate
        );
        assert!(report.polluted_false_hit_rate > 0.25);
        assert!(report.clean_false_hit_rate < 0.15);
        assert_eq!(report.wasted_probe_latency, Duration::from_millis(10));
    }

    #[test]
    fn stats_probe_rate_helper() {
        let stats = TrafficStats { sibling_hits: 10, wasted_probes: 30, ..TrafficStats::default() };
        assert!((stats.false_positive_probe_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TrafficStats::default().false_positive_probe_rate(), 0.0);
    }
}

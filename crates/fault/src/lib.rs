//! # evilbloom-fault
//!
//! Deterministic, seeded fault injection for the evilbloom serving stack.
//!
//! Production code is instrumented with **named fault points** — one
//! [`check`] call at each I/O site that can realistically fail (WAL append,
//! WAL fsync, snapshot write, socket read, socket write, accept). When no
//! plan is armed, a fault point is a single relaxed atomic load and an
//! immediate return: cheap enough to leave compiled into release binaries
//! (the perf lab's `server/fault_hooks_overhead` experiment gates this).
//!
//! A chaos run arms a [`FaultPlan`]: a list of rules, each binding a
//! [`FaultPoint`] and a trigger (exact nth hit, every-nth hit, or a seeded
//! per-hit probability) to a [`FaultAction`] — an injected I/O error, a
//! short write, or artificial latency. Hit counters and the probability
//! stream are deterministic functions of `(point, nth-hit, seed)`, so a
//! chaos schedule **replays exactly**: the same plan against the same
//! workload injects the same faults at the same operations.
//!
//! The registry is process-global (the instrumented sites sit behind
//! `&self` deep in the store and server and cannot thread a handle).
//! [`arm`] therefore returns an RAII [`ArmedPlan`] guard that holds an
//! exclusive session lock — concurrent tests serialize instead of
//! corrupting each other's schedules — and disarms on drop.
//!
//! Like `evilbloom-metrics` and `evilbloom-trace`, this crate has **zero
//! dependencies** (the probability stream uses an inline splitmix64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// A named instrumentation site in the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Buffering a record into the write-ahead log.
    WalAppend,
    /// The WAL group-commit `write` + `fsync` pair.
    WalFsync,
    /// Writing or renaming a snapshot file.
    SnapshotWrite,
    /// Reading from an accepted client socket.
    SocketRead,
    /// Writing to an accepted client socket.
    SocketWrite,
    /// Accepting a new connection.
    Accept,
}

impl FaultPoint {
    /// Every fault point, in a fixed order (stable across releases so
    /// recorded plans replay).
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::SnapshotWrite,
        FaultPoint::SocketRead,
        FaultPoint::SocketWrite,
        FaultPoint::Accept,
    ];

    /// Stable lowercase name (used in injected error messages and docs).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WalAppend => "wal-append",
            FaultPoint::WalFsync => "wal-fsync",
            FaultPoint::SnapshotWrite => "snapshot-write",
            FaultPoint::SocketRead => "socket-read",
            FaultPoint::SocketWrite => "socket-write",
            FaultPoint::Accept => "accept",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::WalAppend => 0,
            FaultPoint::WalFsync => 1,
            FaultPoint::SnapshotWrite => 2,
            FaultPoint::SocketRead => 3,
            FaultPoint::SocketWrite => 4,
            FaultPoint::Accept => 5,
        }
    }
}

impl core::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an armed rule injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an injected [`std::io::Error`].
    Error,
    /// A write is truncated to roughly half its buffer (callers must
    /// handle partial writes; reads treat this as [`FaultAction::Error`]).
    ShortWrite,
    /// The operation succeeds after an artificial stall.
    Latency(Duration),
}

/// When a rule fires, counted in per-point hits since the plan was armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Exactly the `n`-th hit (1-based) of the point.
    Nth(u64),
    /// Every `n`-th hit of the point.
    EveryNth(u64),
    /// Each hit independently, with probability `p` drawn from the plan's
    /// seeded stream (per-mille, so the trigger stays `Eq`).
    PerMille(u16),
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    trigger: Trigger,
    action: FaultAction,
}

/// A deterministic, replayable schedule of faults.
///
/// Build with the fluent methods, then [`arm`] it:
///
/// ```
/// use evilbloom_fault::{self as fault, FaultPlan, FaultPoint};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new(42)
///     .fail_nth(FaultPoint::WalFsync, 3)
///     .delay_every(FaultPoint::SocketRead, 10, Duration::from_millis(1));
/// let _chaos = fault::arm(plan);
/// assert!(fault::check(FaultPoint::WalFsync).is_none()); // hit 1
/// assert!(fault::check(FaultPoint::WalFsync).is_none()); // hit 2
/// assert!(fault::check(FaultPoint::WalFsync).is_some()); // hit 3 fires
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(FaultPoint, Rule)>,
}

impl FaultPlan {
    /// An empty plan whose probabilistic triggers draw from a splitmix64
    /// stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    fn rule(mut self, point: FaultPoint, trigger: Trigger, action: FaultAction) -> Self {
        self.rules.push((point, Rule { trigger, action }));
        self
    }

    /// Injects an I/O error on exactly the `nth` hit (1-based) of `point`.
    pub fn fail_nth(self, point: FaultPoint, nth: u64) -> Self {
        self.rule(point, Trigger::Nth(nth), FaultAction::Error)
    }

    /// Injects an I/O error on every `every`-th hit of `point`.
    pub fn fail_every(self, point: FaultPoint, every: u64) -> Self {
        self.rule(point, Trigger::EveryNth(every.max(1)), FaultAction::Error)
    }

    /// Injects an I/O error on each hit of `point` independently with
    /// probability `per_mille`/1000, drawn from the plan's seeded stream.
    pub fn fail_per_mille(self, point: FaultPoint, per_mille: u16) -> Self {
        self.rule(point, Trigger::PerMille(per_mille.min(1000)), FaultAction::Error)
    }

    /// Truncates the write on exactly the `nth` hit (1-based) of `point`.
    pub fn short_write_nth(self, point: FaultPoint, nth: u64) -> Self {
        self.rule(point, Trigger::Nth(nth), FaultAction::ShortWrite)
    }

    /// Truncates the write on every `every`-th hit of `point`.
    pub fn short_write_every(self, point: FaultPoint, every: u64) -> Self {
        self.rule(point, Trigger::EveryNth(every.max(1)), FaultAction::ShortWrite)
    }

    /// Stalls exactly the `nth` hit (1-based) of `point` for `delay`.
    pub fn delay_nth(self, point: FaultPoint, nth: u64, delay: Duration) -> Self {
        self.rule(point, Trigger::Nth(nth), FaultAction::Latency(delay))
    }

    /// Stalls every `every`-th hit of `point` for `delay`.
    pub fn delay_every(self, point: FaultPoint, every: u64, delay: Duration) -> Self {
        self.rule(point, Trigger::EveryNth(every.max(1)), FaultAction::Latency(delay))
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the plan has no rules (arming it still counts hits).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

const POINTS: usize = FaultPoint::ALL.len();

struct ArmedState {
    /// Rules grouped per point; first matching rule wins.
    rules: [Vec<Rule>; POINTS],
    /// Hits per point since arming.
    hits: [u64; POINTS],
    /// Faults actually injected per point since arming.
    injected: [u64; POINTS],
    /// splitmix64 state for the probabilistic triggers.
    rng: u64,
}

/// Fast-path flag: fault points pay one relaxed load when nothing is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Armed schedule; only locked after the `ARMED` fast path passes (or by
/// the arm/disarm and introspection paths themselves).
static STATE: Mutex<Option<ArmedState>> = Mutex::new(None);
/// Session lock serializing concurrent chaos runs in one process.
static SESSION: Mutex<()> = Mutex::new(());

fn state() -> MutexGuard<'static, Option<ArmedState>> {
    // The armed state holds no invariants a panic can break mid-update;
    // recover from poisoning instead of cascading.
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard for an armed [`FaultPlan`]: holds the process-wide chaos
/// session (concurrent [`arm`] calls block) and disarms on drop.
#[must_use = "dropping the guard immediately disarms the plan"]
pub struct ArmedPlan {
    _session: MutexGuard<'static, ()>,
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *state() = None;
    }
}

impl core::fmt::Debug for ArmedPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArmedPlan").finish_non_exhaustive()
    }
}

/// Arms `plan` process-wide and returns the guard that keeps it armed.
///
/// Blocks until any previously armed plan is dropped, so tests that inject
/// faults serialize instead of interleaving their schedules.
pub fn arm(plan: FaultPlan) -> ArmedPlan {
    let session = SESSION.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rules: [Vec<Rule>; POINTS] = Default::default();
    for (point, rule) in plan.rules {
        rules[point.index()].push(rule);
    }
    *state() = Some(ArmedState { rules, hits: [0; POINTS], injected: [0; POINTS], rng: plan.seed });
    ARMED.store(true, Ordering::SeqCst);
    ArmedPlan { _session: session }
}

/// Whether a plan is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Hits a fault point recorded since arming (0 when disarmed). Test and
/// harness introspection — not part of the hot path.
pub fn hits(point: FaultPoint) -> u64 {
    state().as_ref().map_or(0, |s| s.hits[point.index()])
}

/// Faults actually injected at a point since arming (0 when disarmed).
pub fn injected(point: FaultPoint) -> u64 {
    state().as_ref().map_or(0, |s| s.injected[point.index()])
}

/// Sebastiano Vigna's splitmix64 step — the whole PRNG this crate needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fault-point hook: records a hit and returns the action to inject,
/// or `None` (the overwhelmingly common case).
///
/// When nothing is armed this is one relaxed atomic load — the cost the
/// `server/fault_hooks_overhead` perf gate bounds.
#[inline]
pub fn check(point: FaultPoint) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(point)
}

#[cold]
fn check_armed(point: FaultPoint) -> Option<FaultAction> {
    let mut guard = state();
    let state = guard.as_mut()?;
    let index = point.index();
    state.hits[index] += 1;
    let hit = state.hits[index];
    // Split borrows: the rule scan needs `rules` while the probabilistic
    // trigger steps `rng`.
    let ArmedState { rules, injected, rng, .. } = state;
    for rule in &rules[index] {
        let fires = match rule.trigger {
            Trigger::Nth(n) => hit == n,
            Trigger::EveryNth(n) => hit.is_multiple_of(n),
            Trigger::PerMille(p) => splitmix64(rng) % 1000 < u64::from(p),
        };
        if fires {
            injected[index] += 1;
            return Some(rule.action);
        }
    }
    None
}

/// The injected error every failing fault point returns (message carries
/// the point name, so observed errors attribute to their schedule entry).
pub fn injected_error(point: FaultPoint) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {}", point.name()))
}

/// Hook for operations with no partial-success mode (reads, fsync,
/// accept, rename): sleeps out latency faults, maps [`FaultAction::Error`]
/// *and* [`FaultAction::ShortWrite`] to an injected error.
#[inline]
pub fn check_io(point: FaultPoint) -> std::io::Result<()> {
    match check(point) {
        None => Ok(()),
        Some(FaultAction::Latency(delay)) => {
            std::thread::sleep(delay);
            Ok(())
        }
        Some(FaultAction::Error) | Some(FaultAction::ShortWrite) => Err(injected_error(point)),
    }
}

/// Hook for writes of `len` bytes: returns how many bytes the caller may
/// hand to the OS. Short writes truncate to half the buffer (≥ 1), errors
/// inject, latency sleeps then allows the full write.
#[inline]
pub fn check_write(point: FaultPoint, len: usize) -> std::io::Result<usize> {
    match check(point) {
        None => Ok(len),
        Some(FaultAction::Latency(delay)) => {
            std::thread::sleep(delay);
            Ok(len)
        }
        Some(FaultAction::Error) => Err(injected_error(point)),
        Some(FaultAction::ShortWrite) => Ok((len / 2).max(1).min(len)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_report_nothing() {
        let _chaos = arm(FaultPlan::new(0)); // serialize with other tests
        drop(_chaos);
        assert!(!armed());
        for point in FaultPoint::ALL {
            assert_eq!(check(point), None);
            assert_eq!(hits(point), 0);
        }
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _chaos = arm(FaultPlan::new(7).fail_nth(FaultPoint::WalFsync, 3));
        assert!(armed());
        let fired: Vec<bool> = (0..6).map(|_| check(FaultPoint::WalFsync).is_some()).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(hits(FaultPoint::WalFsync), 6);
        assert_eq!(injected(FaultPoint::WalFsync), 1);
        // Other points are untouched.
        assert_eq!(check(FaultPoint::SocketRead), None);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let _chaos = arm(FaultPlan::new(7).short_write_every(FaultPoint::SocketWrite, 4));
        let fired: Vec<bool> = (0..12).map(|_| check(FaultPoint::SocketWrite).is_some()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3);
        assert!(fired[3] && fired[7] && fired[11]);
    }

    #[test]
    fn probabilistic_trigger_replays_exactly_under_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let _chaos = arm(FaultPlan::new(seed).fail_per_mille(FaultPoint::Accept, 250));
            (0..200).map(|_| check(FaultPoint::Accept).is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c = run(43);
        assert_ne!(a, c, "different seeds must diverge");
        let rate = a.iter().filter(|&&f| f).count();
        assert!((20..80).contains(&rate), "~25% of 200 hits, got {rate}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1)
            .delay_nth(FaultPoint::WalAppend, 2, Duration::from_nanos(1))
            .fail_nth(FaultPoint::WalAppend, 2);
        let _chaos = arm(plan);
        assert_eq!(check(FaultPoint::WalAppend), None);
        assert_eq!(
            check(FaultPoint::WalAppend),
            Some(FaultAction::Latency(Duration::from_nanos(1)))
        );
    }

    #[test]
    fn check_io_maps_actions() {
        let plan = FaultPlan::new(1)
            .fail_nth(FaultPoint::SnapshotWrite, 1)
            .short_write_nth(FaultPoint::SnapshotWrite, 2)
            .delay_nth(FaultPoint::SnapshotWrite, 3, Duration::from_nanos(1));
        let _chaos = arm(plan);
        let err = check_io(FaultPoint::SnapshotWrite).unwrap_err();
        assert!(err.to_string().contains("injected fault at snapshot-write"), "{err}");
        assert!(check_io(FaultPoint::SnapshotWrite).is_err(), "short write is an error for io ops");
        assert!(check_io(FaultPoint::SnapshotWrite).is_ok(), "latency resolves to success");
        assert!(check_io(FaultPoint::SnapshotWrite).is_ok(), "no further rules");
    }

    #[test]
    fn check_write_truncates_short_writes() {
        let plan = FaultPlan::new(1)
            .short_write_nth(FaultPoint::SocketWrite, 1)
            .short_write_nth(FaultPoint::SocketWrite, 2)
            .fail_nth(FaultPoint::SocketWrite, 3);
        let _chaos = arm(plan);
        assert_eq!(check_write(FaultPoint::SocketWrite, 100).unwrap(), 50);
        assert_eq!(check_write(FaultPoint::SocketWrite, 1).unwrap(), 1);
        assert!(check_write(FaultPoint::SocketWrite, 100).is_err());
        assert_eq!(check_write(FaultPoint::SocketWrite, 100).unwrap(), 100);
    }

    #[test]
    fn dropping_the_guard_disarms_and_resets() {
        {
            let _chaos = arm(FaultPlan::new(9).fail_every(FaultPoint::SocketRead, 1));
            assert!(check(FaultPoint::SocketRead).is_some());
            assert_eq!(hits(FaultPoint::SocketRead), 1);
        }
        assert!(!armed());
        assert_eq!(hits(FaultPoint::SocketRead), 0);
        assert_eq!(check(FaultPoint::SocketRead), None);
    }

    #[test]
    fn point_names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<&str> =
            FaultPoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), FaultPoint::ALL.len());
        assert_eq!(FaultPoint::WalFsync.to_string(), "wal-fsync");
    }
}
